type entry = { body : Record.body; size : int }

type stats = { records : int; bytes : int; forced : int }

type t = {
  mutable entries : entry option array; (* index = lsn - base - 1 *)
  mutable base : int; (* number of LSNs truncated away before entries.(0) *)
  mutable next : Lsn.t; (* next LSN to assign *)
  mutable flushed : Lsn.t;
  mutable ckpt : Lsn.t; (* last stable checkpoint, nil if none *)
  mutable records : int;
  mutable bytes : int;
  mutable forced : int;
  mutable truncated : int; (* records reclaimed by truncate *)
  mutable reset_floor : Lsn.t; (* head LSN at the last reset_stats *)
  mutable fault : Pager.Fault.t option;
  mutable tracer : Obs.Trace.t option;
}

let create () =
  {
    entries = Array.make 64 None;
    base = 0;
    next = 1;
    flushed = Lsn.nil;
    ckpt = Lsn.nil;
    records = 0;
    bytes = 0;
    forced = 0;
    truncated = 0;
    reset_floor = Lsn.nil;
    fault = None;
    tracer = None;
  }

let set_tracer t tracer = t.tracer <- tracer
let set_fault t fault = t.fault <- Some fault

let register_obs t reg =
  Obs.Registry.gauge reg "wal.records" (fun () -> t.records);
  Obs.Registry.gauge reg "wal.bytes" (fun () -> t.bytes);
  Obs.Registry.gauge reg "wal.forced" (fun () -> t.forced);
  Obs.Registry.gauge reg "wal.flushed_lsn" (fun () -> t.flushed)

let slot t lsn = lsn - t.base - 1

let ensure t n =
  if n > Array.length t.entries then begin
    let fresh = Array.make (max n (2 * Array.length t.entries)) None in
    Array.blit t.entries 0 fresh 0 (Array.length t.entries);
    t.entries <- fresh
  end

let append t body =
  let lsn = t.next in
  t.next <- lsn + 1;
  ensure t (slot t lsn + 1);
  let size = Record.encoded_size body in
  t.entries.(slot t lsn) <- Some { body; size };
  t.records <- t.records + 1;
  t.bytes <- t.bytes + size;
  lsn

let head_lsn t = t.next - 1

let force t lsn =
  let lsn = min lsn (head_lsn t) in
  if lsn > t.flushed then begin
    (* The fault controller decides how many of the pending records reach
       stable storage — all of them normally, a prefix if this force trips a
       torn-tail plan.  Tearing the tail here is sound: this very call never
       returns (check below raises), so nothing covered by it was ever
       acknowledged to a caller. *)
    let pending = lsn - t.flushed in
    let allowed =
      match t.fault with
      | None -> pending
      | Some f -> Pager.Fault.on_force f ~records:pending
    in
    let lsn = t.flushed + allowed in
    if allowed > 0 then begin
      t.forced <- t.forced + 1;
      (match t.tracer with
      | Some tr ->
        Obs.Trace.instant tr ~cat:"wal" "wal.force"
          ~args:[ ("from", Obs.Trace.Int t.flushed); ("to", Obs.Trace.Int lsn) ]
      | None -> ());
      (* Track the most recent checkpoint as it becomes stable. *)
      for l = t.flushed + 1 to lsn do
        match t.entries.(slot t l) with
        | Some { body = Record.Checkpoint _; _ } -> t.ckpt <- l
        | _ -> ()
      done;
      t.flushed <- lsn
    end;
    match t.fault with None -> () | Some f -> Pager.Fault.check f
  end

let force_all t = force t (head_lsn t)

let flushed_lsn t = t.flushed

let base_lsn t = t.base

let read t lsn =
  (* LSNs at or below [base] were reclaimed by {!truncate}. *)
  if lsn <= t.base || lsn < 1 || lsn > head_lsn t then raise Not_found;
  match t.entries.(slot t lsn) with None -> raise Not_found | Some e -> e.body

let iter ?(from = 1) ?upto t f =
  let upto = match upto with None -> t.flushed | Some u -> min u t.flushed in
  for lsn = max (t.base + 1) (max 1 from) to upto do
    match t.entries.(slot t lsn) with None -> () | Some e -> f lsn e.body
  done

let crash t =
  (* Volatile tail vanishes; the LSN sequence continues (real systems reuse
     offsets, but distinct LSNs keep page-LSN comparisons unambiguous).
     Entries appended before the last [reset_stats] are no longer in the
     counters, so only decrement for the ones appended after the mark — a
     reset-then-crash must not drive the gauges negative. *)
  for lsn = t.flushed + 1 to head_lsn t do
    match t.entries.(slot t lsn) with
    | Some e ->
      if lsn > t.reset_floor then begin
        t.records <- t.records - 1;
        t.bytes <- t.bytes - e.size
      end;
      t.entries.(slot t lsn) <- None
    | None -> ()
  done

let truncate t ~keep_from =
  (* Reclaim stable entries below [keep_from]: advance [base] and compact the
     array.  Only the stable prefix may go — the volatile tail is still
     awaiting a force — and [base] never moves backwards.  Byte/record stats
     measure appended log volume, so truncation leaves them alone. *)
  let keep_from = max keep_from (t.base + 1) in
  let keep_from = min keep_from (t.flushed + 1) in
  (* Metadata dependency: redo of a Reorg_move needs its unit's BEGIN record
     (the unit type decides how the move replays — a swap is not a compact).
     A finished unit's pages can stay dirty long after its BEGIN, so the
     caller's recovery-LSN floor covers the moves but not the BEGIN.  Lower
     [keep_from] to the oldest BEGIN any retained move/modify refers to,
     iterating because newly retained moves can refer to still older
     BEGINs of interleaved (parallel-worker) units. *)
  let keep_from =
    let begins = Hashtbl.create 8 and refs = ref [] in
    for lsn = t.base + 1 to t.flushed do
      match t.entries.(slot t lsn) with
      | Some { body = Record.Reorg_begin { unit_id; _ }; _ } ->
        Hashtbl.replace begins unit_id lsn
      | Some { body = Record.Reorg_move { unit_id; _ } | Record.Reorg_modify { unit_id; _ }; _ }
        ->
        refs := (lsn, unit_id) :: !refs
      | _ -> ()
    done;
    let keep = ref keep_from in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (lsn, unit_id) ->
          if lsn >= !keep then
            match Hashtbl.find_opt begins unit_id with
            | Some b when b < !keep ->
              keep := b;
              changed := true
            | _ -> ())
        !refs
    done;
    !keep
  in
  let new_base = keep_from - 1 in
  let dropped = new_base - t.base in
  if dropped > 0 then begin
    let reclaimed = ref 0 in
    for lsn = t.base + 1 to new_base do
      match t.entries.(slot t lsn) with Some _ -> incr reclaimed | None -> ()
    done;
    let retained = head_lsn t - new_base in
    let cap = max 64 retained in
    let fresh = Array.make cap None in
    Array.blit t.entries dropped fresh 0 retained;
    t.entries <- fresh;
    t.base <- new_base;
    t.truncated <- t.truncated + !reclaimed;
    if t.ckpt <> Lsn.nil && t.ckpt <= new_base then t.ckpt <- Lsn.nil;
    match t.tracer with
    | Some tr ->
      Obs.Trace.instant tr ~cat:"wal" "wal.truncate"
        ~args:[ ("base", Obs.Trace.Int t.base); ("records", Obs.Trace.Int !reclaimed) ]
    | None -> ()
  end

let truncated_records t = t.truncated

let last_checkpoint t =
  if t.ckpt = Lsn.nil then None
  else
    match t.entries.(slot t t.ckpt) with
    | Some e -> Some (t.ckpt, e.body)
    | None -> None

let stats t = { records = t.records; bytes = t.bytes; forced = t.forced }

let reset_stats t =
  t.records <- 0;
  t.bytes <- 0;
  t.forced <- 0;
  (* Entries at or below this mark are no longer reflected in the counters;
     a later [crash] must not subtract them. *)
  t.reset_floor <- head_lsn t
