module Page = Pager.Page
module Buffer_pool = Pager.Buffer_pool
module Alloc = Pager.Alloc
module Mode = Lockmgr.Mode
module Resource = Lockmgr.Resource
module Lock_client = Transact.Lock_client
module Journal = Transact.Journal
module Txn_mgr = Transact.Txn_mgr
module Engine = Sched.Engine
module Leaf = Btree.Leaf
module Inode = Btree.Inode
module Tree = Btree.Tree
module Access = Btree.Access
module Layout = Btree.Layout

type stats = {
  mutable ops : int;
  mutable merges : int;
  mutable swaps : int;
  mutable moves : int;
  mutable records_moved : int;
  mutable log_bytes : int;
  mutable lock_hold_ticks : int;
}

let create_stats () =
  { ops = 0; merges = 0; swaps = 0; moves = 0; records_moved = 0; log_bytes = 0; lock_hold_ticks = 0 }

(* Run [f] as one block operation: an individual transaction holding the
   file (tree) lock exclusively — "[Smi90] prevents user transactions from
   accessing the entire file". *)
let block_op ~access stats f =
  let mgr = Access.mgr access in
  let tree = Access.tree access in
  let locks = Access.locks access in
  let journal = Tree.journal tree in
  let log = Journal.log journal in
  let tx = Txn_mgr.begin_txn mgr in
  let bytes_before = (Wal.Log.stats log).Wal.Log.bytes in
  Lock_client.acquire locks ~txn:tx (Resource.Tree (Tree.tree_name tree)) Mode.X;
  let t0 = Engine.current_time () in
  let result = f tx in
  Engine.yield ();
  (* The file lock is held for the whole operation, commit included. *)
  Txn_mgr.commit mgr tx;
  stats.lock_hold_ticks <- stats.lock_hold_ticks + (Engine.current_time () - t0);
  stats.ops <- stats.ops + 1;
  stats.log_bytes <- stats.log_bytes + ((Wal.Log.stats log).Wal.Log.bytes - bytes_before);
  result

let page tree pid = Buffer_pool.get (Tree.pool tree) pid

let whole_page tree ?txn pid f =
  let size = Buffer_pool.page_size (Tree.pool tree) in
  Journal.physical (Tree.journal tree) ?txn ~page:pid ~off:0 ~len:size f

let entry_key_of_leaf tree pid =
  match Tree.parent_of_leaf tree (Leaf.low_mark (page tree pid)) with
  | None -> None
  | Some parent -> begin
    match Inode.find_child (page tree parent) pid with
    | Some i -> Some (parent, (Inode.entry_at (page tree parent) i).Inode.key)
    | None -> None
  end

(* Adjacent leaves are merged only under a common parent: removing the
   first entry of the *next* base page would orphan the key range between
   that base's low mark and its new first entry. *)
let same_parent tree a b =
  let pa = page tree a and pb = page tree b in
  let ka = match Leaf.min_key pa with Some k -> k | None -> Leaf.low_mark pa in
  let kb = match Leaf.min_key pb with Some k -> k | None -> Leaf.low_mark pb in
  match (Tree.parent_of_leaf tree ka, Tree.parent_of_leaf tree kb) with
  | Some x, Some y -> x = y
  | _ -> false

(* Merge leaf [b] (successor in the chain) into leaf [a]. *)
let merge_blocks tree tx ~a ~b =
  let records_b = Leaf.records (page tree b) in
  let next_b = Leaf.next (page tree b) in
  whole_page tree ~txn:tx a (fun p ->
      List.iter (fun r -> assert (Leaf.insert p r)) records_b;
      Leaf.set_next p next_b);
  (match next_b with
  | Some n -> whole_page tree ~txn:tx n (fun p -> Leaf.set_prev p (Some a))
  | None -> ());
  let entry = entry_key_of_leaf tree b in
  whole_page tree ~txn:tx b (fun p -> Page.set_kind p Page.kind_free);
  Alloc.release (Tree.alloc tree) b;
  (match entry with
  | Some (_, key) -> Tree.delete_base_entry tree ~txn:tx key
  | None -> ());
  List.length records_b

let compact ~access ~f2 stats =
  let tree = Access.tree access in
  let usable =
    Layout.usable_bytes ~page_size:(Buffer_pool.page_size (Tree.pool tree))
  in
  let usable = int_of_float (f2 *. float_of_int usable) in
  let target = usable in
  (* One merge per transaction; rescan from the front after each (the merged
     page may absorb further successors). *)
  let rec pass () =
    let candidate =
      let found = ref None in
      (try
         Tree.iter_leaves tree (fun pid p ->
             if !found = None then
               match Leaf.next p with
               | Some nxt when Leaf.live_bytes p < target ->
                 if
                   Leaf.live_bytes p + Leaf.live_bytes (page tree nxt) <= target
                   && same_parent tree pid nxt
                 then found := Some (pid, nxt)
               | _ -> ())
       with _ -> ());
      !found
    in
    match candidate with
    | None -> ()
    | Some (a, b) ->
      let moved =
        block_op ~access stats (fun tx ->
            (* Re-validate under the file lock: concurrent transactions may
               have changed the chain since the candidate was chosen. *)
            let pa = page tree a in
            if
              Leaf.is_leaf pa
              && Leaf.next pa = Some b
              && Leaf.is_leaf (page tree b)
              && Leaf.live_bytes pa + Leaf.live_bytes (page tree b) <= usable
              && same_parent tree a b
            then merge_blocks tree tx ~a ~b
            else -1)
      in
      if moved >= 0 then begin
        stats.merges <- stats.merges + 1;
        stats.records_moved <- stats.records_moved + moved
      end;
      pass ()
  in
  pass ()

(* Exchange the contents of two leaves, or move a leaf into a free page —
   two blocks per transaction, full-page logging. *)
let swap_blocks tree tx ~a ~b =
  let pa = page tree a and pb = page tree b in
  let ra = Leaf.records pa and rb = Leaf.records pb in
  let la = Leaf.low_mark pa and lb = Leaf.low_mark pb in
  let linka = (Leaf.prev pa, Leaf.next pa) and linkb = (Leaf.prev pb, Leaf.next pb) in
  let tr = function Some p when p = a -> Some b | Some p when p = b -> Some a | x -> x in
  let ea = entry_key_of_leaf tree a and eb = entry_key_of_leaf tree b in
  whole_page tree ~txn:tx b (fun p ->
      Leaf.init p ~low_mark:la;
      List.iter (fun r -> assert (Leaf.insert p r)) ra;
      Leaf.set_prev p (tr (fst linka));
      Leaf.set_next p (tr (snd linka)));
  whole_page tree ~txn:tx a (fun p ->
      Leaf.init p ~low_mark:lb;
      List.iter (fun r -> assert (Leaf.insert p r)) rb;
      Leaf.set_prev p (tr (fst linkb));
      Leaf.set_next p (tr (snd linkb)));
  let fix_neighbor n ~prev ~to_ =
    match n with
    | Some p when p <> a && p <> b ->
      whole_page tree ~txn:tx p (fun q ->
          if prev then Leaf.set_prev q (Some to_) else Leaf.set_next q (Some to_))
    | _ -> ()
  in
  fix_neighbor (fst linka) ~prev:false ~to_:b;
  fix_neighbor (snd linka) ~prev:true ~to_:b;
  fix_neighbor (fst linkb) ~prev:false ~to_:a;
  fix_neighbor (snd linkb) ~prev:true ~to_:a;
  let repoint entry ~from_ ~to_ =
    match entry with
    | Some (parent, key) ->
      whole_page tree ~txn:tx parent (fun p ->
          match Inode.find_key p key with
          | Some i ->
            let e = Inode.entry_at p i in
            if e.Inode.child = from_ then Inode.update_at p i { e with Inode.child = to_ }
          | None -> ())
    | None -> ()
  in
  repoint ea ~from_:a ~to_:b;
  repoint eb ~from_:b ~to_:a;
  List.length ra + List.length rb

let move_block tree tx ~org ~dest =
  let po = page tree org in
  let records = Leaf.records po in
  let low = Leaf.low_mark po in
  let prev = Leaf.prev po and next = Leaf.next po in
  Alloc.alloc_specific (Tree.alloc tree) dest;
  whole_page tree ~txn:tx dest (fun p ->
      Leaf.init p ~low_mark:low;
      List.iter (fun r -> assert (Leaf.insert p r)) records;
      Leaf.set_prev p prev;
      Leaf.set_next p next);
  (match prev with
  | Some q -> whole_page tree ~txn:tx q (fun p -> Leaf.set_next p (Some dest))
  | None -> ());
  (match next with
  | Some q -> whole_page tree ~txn:tx q (fun p -> Leaf.set_prev p (Some dest))
  | None -> ());
  let entry = entry_key_of_leaf tree org in
  (match entry with
  | Some (parent, key) ->
    whole_page tree ~txn:tx parent (fun p ->
        match Inode.find_key p key with
        | Some i ->
          let e = Inode.entry_at p i in
          Inode.update_at p i { e with Inode.child = dest }
        | None -> ())
  | None -> ());
  whole_page tree ~txn:tx org (fun p -> Page.set_kind p Page.kind_free);
  Alloc.release (Tree.alloc tree) org;
  List.length records

let order_leaves ~access stats =
  let tree = Access.tree access in
  let alloc = Tree.alloc tree in
  let leaf_lo, _ = Alloc.leaf_zone alloc in
  let continue_ = ref true in
  let frontier = ref 0 in
  while !continue_ do
    let leaves = Tree.leaf_pids tree in
    let misplaced =
      List.filteri (fun i _ -> i >= !frontier) leaves
      |> List.mapi (fun j pid -> (!frontier + j, pid))
      |> List.find_opt (fun (i, pid) -> pid <> leaf_lo + i)
    in
    match misplaced with
    | None -> continue_ := false
    | Some (i, pid) ->
      let target = leaf_lo + i in
      let result =
        block_op ~access stats (fun tx ->
            (* Decide under the file lock. *)
            if not (Leaf.is_leaf (page tree pid)) then `Stale
            else if Alloc.is_free alloc target then
              `Moved (move_block tree tx ~org:pid ~dest:target)
            else if Leaf.is_leaf (page tree target) then
              `Swapped (swap_blocks tree tx ~a:pid ~b:target)
            else `Stale)
      in
      (match result with
      | `Moved n ->
        stats.moves <- stats.moves + 1;
        stats.records_moved <- stats.records_moved + n;
        frontier := i + 1
      | `Swapped n ->
        stats.swaps <- stats.swaps + 1;
        stats.records_moved <- stats.records_moved + n;
        frontier := i + 1
      | `Stale -> frontier := i + 1)
  done

let reorganize ~access ~f2 =
  let stats = create_stats () in
  compact ~access ~f2 stats;
  order_leaves ~access stats;
  stats
