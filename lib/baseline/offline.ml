module Page = Pager.Page
module Buffer_pool = Pager.Buffer_pool
module Alloc = Pager.Alloc
module Mode = Lockmgr.Mode
module Resource = Lockmgr.Resource
module Lock_client = Transact.Lock_client
module Journal = Transact.Journal
module Txn_mgr = Transact.Txn_mgr
module Engine = Sched.Engine
module Leaf = Btree.Leaf
module Inode = Btree.Inode
module Tree = Btree.Tree
module Access = Btree.Access

type stats = { records : int; offline_ticks : int; pages_written : int }

(* Free every page of the old tree (leaves included — the rebuild made
   fresh copies of everything). *)
let free_old_tree tree ~old_root =
  let journal = Tree.journal tree in
  let rec free pid =
    let p = Tree.page tree pid in
    if Inode.is_internal p then List.iter (fun e -> free e.Inode.child) (Inode.entries p);
    Journal.physical journal ~page:pid ~off:0 ~len:1 (fun q ->
        Page.set_kind q Page.kind_free);
    Alloc.release (Tree.alloc tree) pid
  in
  free old_root

let reorganize ~access ~f2 =
  let tree = Access.tree access in
  let mgr = Access.mgr access in
  let locks = Access.locks access in
  let journal = Tree.journal tree in
  let pool = Tree.pool tree in
  let tx = Txn_mgr.begin_txn mgr in
  (* The whole file goes offline. *)
  Lock_client.acquire locks ~txn:tx (Resource.Tree (Tree.tree_name tree)) Mode.X;
  let t0 = Engine.current_time () in
  let flushes0 = Buffer_pool.flushes pool in
  let records =
    List.map (fun r -> (r.Leaf.key, r.Leaf.payload)) (Tree.range tree ~lo:min_int ~hi:max_int)
  in
  let old_root = Tree.root tree in
  (* Bulk-build the new tree in fresh space (unlogged, like CREATE INDEX;
     it is flushed before the switch). *)
  let entries =
    let alloc = Tree.alloc tree in
    let new_leaves = ref [] in
    let usable =
      Btree.Layout.usable_bytes
        ~page_size:(Buffer_pool.page_size pool)
    in
    let target = int_of_float (f2 *. float_of_int usable) in
    let cur = ref None in
    let prev = ref None in
    let start low =
      (* One tick per page constructed: the build is I/O bound. *)
      Engine.sleep 1;
      let pid = Alloc.alloc alloc Alloc.Leaf in
      let p = Buffer_pool.get pool pid in
      Leaf.init p ~low_mark:low;
      (match !prev with
      | Some q ->
        Leaf.set_prev p (Some q);
        let qp = Buffer_pool.get pool q in
        Leaf.set_next qp (Some pid);
        Buffer_pool.mark_dirty pool q
      | None -> ());
      Buffer_pool.mark_dirty pool pid;
      prev := Some pid;
      new_leaves := (low, pid) :: !new_leaves;
      cur := Some pid;
      pid
    in
    List.iter
      (fun (key, payload) ->
        let r = { Leaf.key; payload } in
        let pid =
          match !cur with
          | Some pid when Leaf.live_bytes (Buffer_pool.get pool pid) + Leaf.record_bytes r <= target
            ->
            pid
          | _ -> start key
        in
        assert (Leaf.insert (Buffer_pool.get pool pid) r);
        Buffer_pool.mark_dirty pool pid)
      records;
    match List.rev !new_leaves with
    | [] ->
      let pid = Alloc.alloc (Tree.alloc tree) Alloc.Leaf in
      let p = Buffer_pool.get pool pid in
      Leaf.init p ~low_mark:min_int;
      Buffer_pool.mark_dirty pool pid;
      [ (min_int, pid) ]
    | (_, first) :: rest ->
      let p = Buffer_pool.get pool first in
      Leaf.set_low_mark p min_int;
      Buffer_pool.mark_dirty pool first;
      (min_int, first) :: rest
  in
  let new_root =
    match entries with
    | [ (_, only) ] -> only
    | _ ->
      Btree.Bulk.build_internal_levels ~journal ~alloc:(Tree.alloc tree) ~fill:f2
        ~gen:(Tree.generation tree + 1) entries
  in
  Buffer_pool.flush_all pool;
  (* Switch and reclaim. *)
  Tree.set_root tree ~txn:tx new_root;
  Tree.set_generation tree ~txn:tx (Tree.generation tree + 1);
  free_old_tree tree ~old_root;
  let offline_ticks = Engine.current_time () - t0 in
  let pages_written = Buffer_pool.flushes pool - flushes0 in
  Txn_mgr.commit mgr tx;
  { records = List.length records; offline_ticks; pages_written }
