type page_info = { live : int; usable : int; next_pid : int option; low_key : int }
type side_event = Append | Take | Removed | Restored
type signal = Utilization | Fragmentation | Backlog

let signal_name = function
  | Utilization -> "utilization"
  | Fragmentation -> "fragmentation"
  | Backlog -> "backlog"

type fire = { f_name : string; f_value : float; f_at : int }

type watch_def = {
  w_name : string;
  w_signal : signal;
  w_region : (int * int) option;
  w_op : [ `Lt | `Gt ];
  w_threshold : float;
  w_fn : fire -> unit;
  mutable w_armed : bool;
}

type t = {
  pages : (int, page_info) Hashtbl.t;
  pending : (int, unit) Hashtbl.t;
  mutable refresher : (int -> page_info option) option;
  mutable free_probe : (unit -> int) option;
  (* Aggregates, maintained by delta as pages enter/leave [pages]. *)
  mutable total_live : int;
  mutable total_usable : int;
  mutable chain_breaks : int;
  fill : int array;
  (* Event counters. *)
  mutable backlog : int;
  mutable backlog_peak : int;
  mutable side_appends : int;
  mutable side_takes : int;
  mutable allocs : int;
  mutable frees : int;
  mutable units : int;
  mutable switches : int;
  mutable fires : int;
  (* Watches, kept in registration order. *)
  mutable watches : watch_def list;
}

let buckets = 10

let bucket_index ~live ~usable =
  if usable <= 0 then 0
  else
    let f = float_of_int live /. float_of_int usable in
    min (buckets - 1) (max 0 (int_of_float (f *. float_of_int buckets)))

let create () =
  {
    pages = Hashtbl.create 256;
    pending = Hashtbl.create 64;
    refresher = None;
    free_probe = None;
    total_live = 0;
    total_usable = 0;
    chain_breaks = 0;
    fill = Array.make buckets 0;
    backlog = 0;
    backlog_peak = 0;
    side_appends = 0;
    side_takes = 0;
    allocs = 0;
    frees = 0;
    units = 0;
    switches = 0;
    fires = 0;
    watches = [];
  }

let set_refresher t f = t.refresher <- Some f
let set_free_probe t f = t.free_probe <- Some f
let note_dirty t pid = Hashtbl.replace t.pending pid ()

let invalidate_all t =
  Hashtbl.iter (fun pid _ -> Hashtbl.replace t.pending pid ()) t.pages

let is_break pid info =
  match info.next_pid with Some n -> n <> pid + 1 | None -> false

let forget t pid =
  match Hashtbl.find_opt t.pages pid with
  | None -> ()
  | Some info ->
    Hashtbl.remove t.pages pid;
    t.total_live <- t.total_live - info.live;
    t.total_usable <- t.total_usable - info.usable;
    let b = bucket_index ~live:info.live ~usable:info.usable in
    t.fill.(b) <- t.fill.(b) - 1;
    if is_break pid info then t.chain_breaks <- t.chain_breaks - 1

let learn t pid info =
  forget t pid;
  Hashtbl.replace t.pages pid info;
  t.total_live <- t.total_live + info.live;
  t.total_usable <- t.total_usable + info.usable;
  let b = bucket_index ~live:info.live ~usable:info.usable in
  t.fill.(b) <- t.fill.(b) + 1;
  if is_break pid info then t.chain_breaks <- t.chain_breaks + 1

let refresh t =
  if Hashtbl.length t.pending > 0 then begin
    match t.refresher with
    | None -> ()
    | Some look ->
      let pids = Hashtbl.fold (fun pid () acc -> pid :: acc) t.pending [] in
      Hashtbl.reset t.pending;
      List.iter
        (fun pid ->
          match look pid with Some info -> learn t pid info | None -> forget t pid)
        pids
  end

let pending_count t = Hashtbl.length t.pending
let tracked t = Hashtbl.length t.pages

let side_event t ~size ev =
  t.backlog <- size;
  if size > t.backlog_peak then t.backlog_peak <- size;
  match ev with
  | Append -> t.side_appends <- t.side_appends + 1
  | Take -> t.side_takes <- t.side_takes + 1
  | Removed | Restored -> ()

let note_alloc_event t ev pid =
  (match ev with
  | `Alloc -> t.allocs <- t.allocs + 1
  | `Free -> t.frees <- t.frees + 1);
  note_dirty t pid

let note_unit t = t.units <- t.units + 1
let note_switch t = t.switches <- t.switches + 1

type stats = {
  leaves : int;
  live_bytes : int;
  usable_bytes : int;
  utilization : float;
  chain_breaks : int;
  fragmentation : float;
  fill_buckets : int array;
  backlog : int;
  backlog_peak : int;
  free_pages : int;
  units : int;
  switches : int;
  allocs : int;
  frees : int;
  side_appends : int;
  side_takes : int;
  watch_fires : int;
}

let utilization_of ~live ~usable =
  if usable <= 0 then 0.0 else float_of_int live /. float_of_int usable

let fragmentation_of ~breaks ~leaves =
  if leaves <= 1 then 0.0 else float_of_int breaks /. float_of_int (leaves - 1)

let free_pages t = match t.free_probe with Some f -> f () | None -> 0

let stats t =
  refresh t;
  let leaves = Hashtbl.length t.pages in
  {
    leaves;
    live_bytes = t.total_live;
    usable_bytes = t.total_usable;
    utilization = utilization_of ~live:t.total_live ~usable:t.total_usable;
    chain_breaks = t.chain_breaks;
    fragmentation = fragmentation_of ~breaks:t.chain_breaks ~leaves;
    fill_buckets = Array.copy t.fill;
    backlog = t.backlog;
    backlog_peak = t.backlog_peak;
    free_pages = free_pages t;
    units = t.units;
    switches = t.switches;
    allocs = t.allocs;
    frees = t.frees;
    side_appends = t.side_appends;
    side_takes = t.side_takes;
    watch_fires = t.fires;
  }

let utilization t =
  refresh t;
  utilization_of ~live:t.total_live ~usable:t.total_usable

let fragmentation t =
  refresh t;
  fragmentation_of ~breaks:t.chain_breaks ~leaves:(Hashtbl.length t.pages)

let region_utilization t ~lo ~hi =
  refresh t;
  let live = ref 0 and usable = ref 0 and n = ref 0 in
  Hashtbl.iter
    (fun _pid info ->
      if info.low_key >= lo && info.low_key <= hi then begin
        live := !live + info.live;
        usable := !usable + info.usable;
        incr n
      end)
    t.pages;
  if !n = 0 then 1.0 else utilization_of ~live:!live ~usable:!usable

let watch t ?region ~name ~signal ~op ~threshold fn =
  let w =
    {
      w_name = name;
      w_signal = signal;
      w_region = region;
      w_op = op;
      w_threshold = threshold;
      w_fn = fn;
      w_armed = true;
    }
  in
  t.watches <- List.filter (fun o -> o.w_name <> name) t.watches @ [ w ]

let unwatch t name = t.watches <- List.filter (fun o -> o.w_name <> name) t.watches

let watch_value t w =
  match w.w_signal with
  | Utilization -> (
    match w.w_region with
    | Some (lo, hi) -> region_utilization t ~lo ~hi
    | None -> utilization_of ~live:t.total_live ~usable:t.total_usable)
  | Fragmentation ->
    fragmentation_of ~breaks:t.chain_breaks ~leaves:(Hashtbl.length t.pages)
  | Backlog -> float_of_int t.backlog

let check_watches t ~now =
  refresh t;
  if Hashtbl.length t.pages = 0 then []
  else
    List.filter_map
      (fun w ->
        let v = watch_value t w in
        let hit =
          match w.w_op with `Lt -> v < w.w_threshold | `Gt -> v > w.w_threshold
        in
        if hit && w.w_armed then begin
          w.w_armed <- false;
          t.fires <- t.fires + 1;
          let f = { f_name = w.w_name; f_value = v; f_at = now } in
          w.w_fn f;
          Some f
        end
        else begin
          if not hit then w.w_armed <- true;
          None
        end)
      t.watches

let watch_fires t = t.fires

let per_mille x = int_of_float (Float.round (x *. 1000.0))

let register_obs t reg =
  let g name fn = Registry.gauge reg name fn in
  g "health.leaves" (fun () ->
      refresh t;
      Hashtbl.length t.pages);
  g "health.live_bytes" (fun () ->
      refresh t;
      t.total_live);
  g "health.usable_bytes" (fun () ->
      refresh t;
      t.total_usable);
  g "health.utilization_pm" (fun () -> per_mille (utilization t));
  g "health.chain_breaks" (fun () ->
      refresh t;
      t.chain_breaks);
  g "health.fragmentation_pm" (fun () -> per_mille (fragmentation t));
  for b = 0 to buckets - 1 do
    g (Printf.sprintf "health.fill.%d" b) (fun () ->
        refresh t;
        t.fill.(b))
  done;
  g "health.backlog" (fun () -> t.backlog);
  g "health.backlog_peak" (fun () -> t.backlog_peak);
  g "health.free_pages" (fun () -> free_pages t);
  g "health.units" (fun () -> t.units);
  g "health.switches" (fun () -> t.switches);
  g "health.allocs" (fun () -> t.allocs);
  g "health.frees" (fun () -> t.frees);
  g "health.side_appends" (fun () -> t.side_appends);
  g "health.side_takes" (fun () -> t.side_takes);
  g "health.watch_fires" (fun () -> t.fires)

module Sampler = struct
  type health = t

  type snapshot = {
    at : int;
    leaves : int;
    utilization : float;
    fragmentation : float;
    backlog : int;
    free_pages : int;
    fill_buckets : int array;
    probes : (string * int * int) list;
    fired : string list;
  }

  type nonrec t = {
    health : health;
    tracer : Trace.t option;
    tid : int;
    mutable clock : unit -> int;
    mutable probes : (string * (unit -> int)) list;  (* registration order *)
    mutable prev : (string * int) list;
    mutable snaps : snapshot list;  (* newest first *)
  }

  let create ?tracer ?(tid = 0) ?(clock = fun () -> 0) health =
    { health; tracer; tid; clock; probes = []; prev = []; snaps = [] }

  let set_clock s clock = s.clock <- clock
  let add_probe s name fn = s.probes <- s.probes @ [ (name, fn) ]

  let trace_emit s (snap : snapshot) =
    match s.tracer with
    | None -> ()
    | Some tr ->
      Trace.counter tr ~tid:s.tid ~cat:"health" "tree-health"
        [
          ("utilization", Trace.Float snap.utilization);
          ("fragmentation", Trace.Float snap.fragmentation);
          ("backlog", Trace.Int snap.backlog);
          ("free_pages", Trace.Int snap.free_pages);
          ("leaves", Trace.Int snap.leaves);
        ];
      if snap.probes <> [] then
        Trace.counter tr ~tid:s.tid ~cat:"health" "health-probes"
          (List.map (fun (name, v, _d) -> (name, Trace.Int v)) snap.probes);
      List.iter
        (fun name ->
          Trace.instant tr ~tid:s.tid ~cat:"health" "health.watch-fire"
            ~args:[ ("watch", Trace.Str name) ])
        snap.fired

  let sample s =
    let at = s.clock () in
    let st = stats s.health in
    let fired = check_watches s.health ~now:at in
    let probes =
      List.map
        (fun (name, fn) ->
          let v = fn () in
          let prev = match List.assoc_opt name s.prev with Some p -> p | None -> 0 in
          (name, v, v - prev))
        s.probes
    in
    s.prev <- List.map (fun (name, v, _) -> (name, v)) probes;
    let snap =
      {
        at;
        leaves = st.leaves;
        utilization = st.utilization;
        fragmentation = st.fragmentation;
        backlog = st.backlog;
        free_pages = st.free_pages;
        fill_buckets = st.fill_buckets;
        probes;
        fired = List.map (fun f -> f.f_name) fired;
      }
    in
    s.snaps <- snap :: s.snaps;
    trace_emit s snap;
    snap

  let snapshots s = List.rev s.snaps
  let count s = List.length s.snaps

  let emit_snapshot buf (snap : snapshot) =
    Json.obj buf
      [
        ("at", fun b -> Json.int b snap.at);
        ("leaves", fun b -> Json.int b snap.leaves);
        ("utilization", fun b -> Json.float b snap.utilization);
        ("fragmentation", fun b -> Json.float b snap.fragmentation);
        ("backlog", fun b -> Json.int b snap.backlog);
        ("free_pages", fun b -> Json.int b snap.free_pages);
        ( "fill_buckets",
          fun b ->
            Json.arr b
              (List.map
                 (fun v b -> Json.int b v)
                 (Array.to_list snap.fill_buckets)) );
        ( "probes",
          fun b ->
            Json.obj b
              (List.map
                 (fun (name, v, d) ->
                   ( name,
                     fun b ->
                       Json.obj b
                         [
                           ("value", fun b -> Json.int b v);
                           ("delta", fun b -> Json.int b d);
                         ] ))
                 snap.probes) );
        ( "fired",
          fun b -> Json.arr b (List.map (fun n b -> Json.string b n) snap.fired) );
      ]

  let to_json snaps =
    let buf = Buffer.create 256 in
    Json.arr buf (List.map (fun s b -> emit_snapshot b s) snaps);
    Buffer.contents buf
end
