(** A named sample collector with exact-percentile summaries.

    Samples are stored raw; {!summary} sorts a copy, so call it at reporting
    time, not on hot paths.  The empty histogram summarizes to
    [Util.Stats.empty_summary] instead of raising. *)

type t

val make : string -> t
val name : t -> string
val count : t -> int
val observe : t -> float -> unit
val observe_int : t -> int -> unit
val samples : t -> float array
val summary : t -> Util.Stats.summary
val total : t -> float
val reset : t -> unit
val pp : Format.formatter -> t -> unit
