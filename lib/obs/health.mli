(** Online tree-health telemetry: incrementally-maintained fill-factor,
    fragmentation, side-file backlog and free-space signals — the live
    observability the auto-reorg policy roadmap item needs.

    The tracker never scans the tree.  Mutation sites (the buffer pool's
    dirty hook, in this repository) push {e page ids} into a pending set via
    {!note_dirty}; reading any statistic drains the set through an injected
    {!set_refresher} closure that re-examines just those pages and updates
    the aggregates by delta.  The cost of maintenance is therefore
    O(pages touched since the last reading), independent of tree size, and
    zero I/O happens while nobody is looking.

    The tracker itself is storage-agnostic: it knows page ids and
    {!page_info} records, nothing about B+-trees.  The wiring layer
    ({!Sim.Db} here) supplies the refresher that decodes a page.

    Fragmentation follows the logical-vs-physical adjacency view of the
    leaf chain: page [p] whose logical successor is not page [p+1] is a
    {e break}; the fragmentation index is breaks / (leaves - 1).  A freshly
    reorganized file (Find-Free-Space marches compacted pages toward the
    start of the leaf zone in key order) approaches 0. *)

type t

type page_info = {
  live : int;  (** bytes occupied by live records and their slots *)
  usable : int;  (** usable bytes of the page *)
  next_pid : int option;  (** physical id of the logical successor *)
  low_key : int;  (** low mark — lets watches aggregate over key regions *)
}

val create : unit -> t

val set_refresher : t -> (int -> page_info option) -> unit
(** [refresher pid] re-examines one page: [Some info] if it is currently a
    leaf of the tree, [None] if it is free, internal, meta, or gone.  The
    closure is the only way the tracker ever learns page contents. *)

val note_dirty : t -> int -> unit
(** O(1): enqueue a page for lazy re-examination.  Safe to call from any
    mutation path, before or after the bytes change — the page is only read
    when statistics are next consulted. *)

val invalidate_all : t -> unit
(** Mark every tracked page pending (a crash discarded the buffer pool, so
    in-memory knowledge may be ahead of the disk image). *)

val refresh : t -> unit
(** Drain the pending set now.  Called implicitly by every reader. *)

val pending_count : t -> int
val tracked : t -> int

(** {2 Signals fed by subsystem hooks} *)

type side_event = Append | Take | Removed | Restored

val side_event : t -> size:int -> side_event -> unit
(** Side-file hook: called with the new backlog size after every append /
    take / undo-remove / recovery-restore. *)

val note_alloc_event : t -> [ `Alloc | `Free ] -> int -> unit
(** Allocator hook: page [pid] was allocated or freed.  Counts churn and
    enqueues the page for re-examination. *)

val set_free_probe : t -> (unit -> int) -> unit
(** Live gauge for the number of free pages in the leaf zone. *)

val note_unit : t -> unit
(** A reorganization unit completed (pass 1 compact, pass 2 swap/move). *)

val note_switch : t -> unit
(** Pass 3 switched the tree to the new upper levels. *)

(** {2 Statistics} *)

val buckets : int
(** Number of fill-factor histogram buckets (10: deciles). *)

val bucket_index : live:int -> usable:int -> int
(** Decile bucket for a page at this fill — exposed so brute-force
    recomputations (tests) bucket identically. *)

type stats = {
  leaves : int;
  live_bytes : int;
  usable_bytes : int;
  utilization : float;  (** live / usable over all leaves; 0 when empty *)
  chain_breaks : int;
  fragmentation : float;  (** breaks / (leaves - 1); 0 for <= 1 leaf *)
  fill_buckets : int array;  (** leaf count per fill decile *)
  backlog : int;  (** current side-file size *)
  backlog_peak : int;
  free_pages : int;
  units : int;
  switches : int;
  allocs : int;
  frees : int;
  side_appends : int;
  side_takes : int;
  watch_fires : int;
}

val stats : t -> stats
(** Refreshes, then snapshots every aggregate. *)

val utilization : t -> float
val fragmentation : t -> float

val region_utilization : t -> lo:int -> hi:int -> float
(** Utilization over the leaves whose low mark falls in [[lo, hi]] —
    O(tracked pages), still no page I/O.  1.0 when the region is empty (a
    vacuous region is not sparse). *)

(** {2 Threshold watches — the auto-reorg policy seam}

    A watch is an edge-triggered threshold subscription: the callback fires
    when the condition {e becomes} true (checked at every {!check_watches},
    i.e. every sampler tick), then re-arms when it turns false.  The future
    reorg-policy daemon subscribes "utilization < 0.55 over region R" and
    triggers passes from the callback. *)

type signal = Utilization | Fragmentation | Backlog

val signal_name : signal -> string

type fire = { f_name : string; f_value : float; f_at : int }

val watch :
  t ->
  ?region:int * int ->
  name:string ->
  signal:signal ->
  op:[ `Lt | `Gt ] ->
  threshold:float ->
  (fire -> unit) ->
  unit
(** Register (replacing any watch of the same name).  [region] restricts
    {!Utilization} to leaves whose low mark lies in the inclusive range;
    it is ignored for the global {!Fragmentation} / {!Backlog} signals. *)

val unwatch : t -> string -> unit

val check_watches : t -> now:int -> fire list
(** Evaluate every watch (refreshing first); run and return the fires, in
    watch registration order.  Watches never fire on an empty tree. *)

val watch_fires : t -> int

val register_obs : t -> Registry.t -> unit
(** Register [health.*] gauges (leaves, utilization and fragmentation in
    per-mille, fill deciles, backlog, free pages, unit/switch/alloc churn,
    watch fires) — readable through the registry's table and JSON dumps. *)

(** {2 Periodic time-series sampler}

    Deterministic snapshots on a logical clock: utilization, fragmentation,
    backlog, free pages, fill histogram, plus arbitrary integer probes
    (pool flushes, WAL bytes, ...) with per-interval deltas.  Each sample
    also evaluates the watches; fires are recorded in the snapshot and — when
    a tracer is attached — as Chrome-trace counter events and
    [health.watch-fire] instants. *)
module Sampler : sig
  type health := t

  type snapshot = {
    at : int;  (** logical clock *)
    leaves : int;
    utilization : float;
    fragmentation : float;
    backlog : int;
    free_pages : int;
    fill_buckets : int array;
    probes : (string * int * int) list;  (** name, value, delta since previous sample *)
    fired : string list;  (** watches that fired at this tick *)
  }

  type t

  val create : ?tracer:Trace.t -> ?tid:int -> ?clock:(unit -> int) -> health -> t
  (** [clock] supplies logical timestamps (default: constant 0; the
      scenario harness points it at the scheduler before spawning the
      sampling process). *)

  val set_clock : t -> (unit -> int) -> unit

  val add_probe : t -> string -> (unit -> int) -> unit
  (** Registration order is emission order (deterministic). *)

  val sample : t -> snapshot
  (** Take one snapshot now: refresh health, evaluate watches, read probes,
      record, and emit trace counter events when a tracer is attached. *)

  val snapshots : t -> snapshot list
  (** All snapshots, oldest first. *)

  val count : t -> int

  val emit_snapshot : Buffer.t -> snapshot -> unit
  (** JSON object — the element type of the bench baseline's schema-v2
      [timeseries] arrays. *)

  val to_json : snapshot list -> string
  (** JSON array of {!emit_snapshot} objects. *)
end
