(** A named integer counter: one mutable cell, bumped on hot paths, read at
    dump time by the {!Registry}. *)

type t

val make : string -> t
val name : t -> string
val get : t -> int
val incr : ?by:int -> t -> unit
val set : t -> int -> unit
val reset : t -> unit
val pp : Format.formatter -> t -> unit
