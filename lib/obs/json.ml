(* Minimal hand-rolled JSON emission.  The observability subsystem must not
   pull in a JSON dependency, and everything it writes (Chrome traces,
   registry dumps) is generated, never parsed, so a Buffer-based emitter is
   all that is needed.  Output is deterministic: field order is the call
   order, floats print with a fixed format. *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let string buf s =
  Buffer.add_char buf '"';
  escape buf s;
  Buffer.add_char buf '"'

let int buf n = Buffer.add_string buf (string_of_int n)

(* JSON has no NaN/Infinity literals; consumers get [null] for anything
   non-finite.  Finite values must round-trip: try the shortest of %.15g /
   %.16g and fall back to %.17g (always exact for IEEE doubles).  OCaml's
   Printf is locale-independent — the decimal point is always '.'. *)
let float buf x =
  match Float.classify_float x with
  | FP_nan | FP_infinite -> Buffer.add_string buf "null"
  | FP_zero | FP_subnormal | FP_normal ->
    if Float.is_integer x && Float.abs x < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.0f" x)
    else
      let rec shortest p =
        if p > 17 then Printf.sprintf "%.17g" x
        else
          let s = Printf.sprintf "%.*g" p x in
          if float_of_string s = x then s else shortest (p + 1)
      in
      Buffer.add_string buf (shortest 15)

(* [obj buf [ ("k", fun buf -> ...) ]] — fields emitted in list order. *)
let obj buf fields =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, emit) ->
      if i > 0 then Buffer.add_char buf ',';
      string buf k;
      Buffer.add_char buf ':';
      emit buf)
    fields;
  Buffer.add_char buf '}'

let arr buf emits =
  Buffer.add_char buf '[';
  List.iteri
    (fun i emit ->
      if i > 0 then Buffer.add_char buf ',';
      emit buf)
    emits;
  Buffer.add_char buf ']'
