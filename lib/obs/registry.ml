(* A registry of named metrics.  Subsystems either create counters and
   histograms through the registry (find-or-create by name) or attach ones
   they already own; gauges are closures evaluated at dump time, which lets
   a subsystem expose its existing internal tallies without restructuring
   them.  Dumps are deterministic: metrics are sorted by name. *)

type metric =
  | Counter of Counter.t
  | Gauge of (unit -> int)
  | Histogram of Histogram.t

type t = { tbl : (string, metric) Hashtbl.t; prefix : string }

let create () = { tbl = Hashtbl.create 64; prefix = "" }

(* A prefixed view shares the underlying table: registrations through the
   view land in the parent under [prefix ^ name].  Sharded assemblies wire
   shard [i]'s subsystems through [prefixed reg "shard<i>."] so one registry
   holds every shard's metrics side by side without name collisions. *)
let prefixed t prefix = { tbl = t.tbl; prefix = t.prefix ^ prefix }

let prefix t = t.prefix

(* Registration is idempotent by name: re-registering replaces, so wiring a
   database into the same registry twice (e.g. across a crash/restart pair)
   is harmless. *)
let attach_counter t c = Hashtbl.replace t.tbl (t.prefix ^ Counter.name c) (Counter c)
let attach_histogram t h = Hashtbl.replace t.tbl (t.prefix ^ Histogram.name h) (Histogram h)
let gauge t name fn = Hashtbl.replace t.tbl (t.prefix ^ name) (Gauge fn)

let counter t name =
  let name = t.prefix ^ name in
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg (Printf.sprintf "Registry.counter: %s is not a counter" name)
  | None ->
    let c = Counter.make name in
    Hashtbl.replace t.tbl name (Counter c);
    c

let histogram t name =
  let name = t.prefix ^ name in
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg (Printf.sprintf "Registry.histogram: %s is not a histogram" name)
  | None ->
    let h = Histogram.make name in
    Hashtbl.replace t.tbl name (Histogram h);
    h

let find t name = Hashtbl.find_opt t.tbl (t.prefix ^ name)

let value t name =
  match Hashtbl.find_opt t.tbl (t.prefix ^ name) with
  | Some (Counter c) -> Some (Counter.get c)
  | Some (Gauge fn) -> Some (fn ())
  | Some (Histogram h) -> Some (Histogram.count h)
  | None -> None

let sorted t =
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let cardinal t = Hashtbl.length t.tbl

(* Counters and histograms reset; gauges read live state and are left
   alone. *)
let reset t =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> Counter.reset c
      | Histogram h -> Histogram.reset h
      | Gauge _ -> ())
    t.tbl

let dump t =
  let table =
    Util.Table.create ~title:"metrics"
      [ ("metric", Util.Table.Left); ("value", Util.Table.Right) ]
  in
  List.iter
    (fun (name, m) ->
      let value =
        match m with
        | Counter c -> Util.Table.fmt_int (Counter.get c)
        | Gauge fn -> Util.Table.fmt_int (fn ())
        | Histogram h ->
          if Histogram.count h = 0 then "n=0"
          else Format.asprintf "%a" Util.Stats.pp_summary (Histogram.summary h)
      in
      Util.Table.add_row table [ name; value ])
    (sorted t);
  Util.Table.render table

let to_json t =
  let buf = Buffer.create 1024 in
  let emit_summary h buf =
    let s = Histogram.summary h in
    Json.obj buf
      [
        ("count", fun b -> Json.int b s.Util.Stats.count);
        ("mean", fun b -> Json.float b s.Util.Stats.mean);
        ("stddev", fun b -> Json.float b s.Util.Stats.stddev);
        ("min", fun b -> Json.float b s.Util.Stats.min);
        ("max", fun b -> Json.float b s.Util.Stats.max);
        ("p50", fun b -> Json.float b s.Util.Stats.p50);
        ("p90", fun b -> Json.float b s.Util.Stats.p90);
        ("p99", fun b -> Json.float b s.Util.Stats.p99);
      ]
  in
  let fields =
    List.map
      (fun (name, m) ->
        ( name,
          fun buf ->
            match m with
            | Counter c -> Json.int buf (Counter.get c)
            | Gauge fn -> Json.int buf (fn ())
            | Histogram h -> emit_summary h buf ))
      (sorted t)
  in
  Json.obj buf fields;
  Buffer.contents buf
