(** Deterministic span/event tracing with Chrome [trace_event] export.

    Events are stamped by an injected logical clock (in this repository:
    {!Sched.Engine} ticks), never wall-clock time, so a fixed seed yields a
    byte-identical trace — replayable timelines, in the spirit of the
    contention profiling that motivates the paper's measurements.

    [tid] identifies a timeline row; the scheduler uses one per fiber, so
    the exported trace shows the reorganizer's passes on one row and every
    user transaction's lock waits on its own row.  Load the JSON in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. *)

type arg = Int of int | Float of float | Str of string

type event =
  | Span of {
      name : string;
      cat : string;
      tid : int;
      ts : int;
      dur : int;
      args : (string * arg) list;
    }
  | Instant of { name : string; cat : string; tid : int; ts : int; args : (string * arg) list }
  | Counter of { name : string; cat : string; tid : int; ts : int; args : (string * arg) list }

type t

val create : ?clock:(unit -> int) -> ?limit:int -> unit -> t
(** [clock] supplies logical timestamps (default: constant 0 — set a real
    clock before recording).  [limit], when positive, caps the number of
    recorded events; the excess is counted in {!dropped}. *)

val set_clock : t -> (unit -> int) -> unit
val now : t -> int
val event_count : t -> int
val dropped : t -> int
val clear : t -> unit

val name_thread : t -> tid:int -> string -> unit
(** Label a timeline row (first registration wins). *)

val instant : t -> ?tid:int -> ?args:(string * arg) list -> cat:string -> string -> unit

val counter : t -> ?tid:int -> cat:string -> string -> (string * arg) list -> unit
(** Record a Chrome ["ph":"C"] counter sample: each numeric arg is one
    series of the counter track named [name].  The health sampler emits its
    time series this way. *)

val complete :
  t -> ?tid:int -> ?args:(string * arg) list -> cat:string -> ts:int -> dur:int -> string -> unit
(** Record a span whose interval was measured by the caller (e.g. a lock
    wait recorded at wake-up time). *)

val begin_span : t -> ?tid:int -> ?args:(string * arg) list -> cat:string -> string -> unit

val end_span : t -> ?tid:int -> ?args:(string * arg) list -> unit -> unit
(** Close the innermost open span on [tid]; [args] are appended to the ones
    given at {!begin_span}.  Raises [Invalid_argument] if none is open. *)

val with_span :
  t -> ?tid:int -> ?args:(string * arg) list -> cat:string -> string -> (unit -> 'a) -> 'a

val to_chrome_json : t -> string
val write_chrome : t -> string -> unit

val to_timeline : t -> string
(** Compact text rendering, one line per event in recording order. *)

val count_named : t -> string -> int
