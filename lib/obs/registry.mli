(** A registry of named metrics — counters, gauges and histograms — that
    subsystems register into and that dumps as a sorted table or JSON.

    Two registration styles:
    - find-or-create by name ({!counter}, {!histogram}) for metrics owned by
      the registry's user (e.g. the reorganizer's {!Reorg.Metrics});
    - attachment of closures or pre-existing cells ({!gauge},
      {!attach_counter}, {!attach_histogram}) so a subsystem can expose the
      tallies it already keeps (lock manager, buffer pool, WAL) without
      restructuring them.

    Registration is idempotent by name (replace), so re-wiring the same
    database across a crash/restart pair is harmless.  Dumps are
    deterministic: metrics sort by name. *)

type metric =
  | Counter of Counter.t
  | Gauge of (unit -> int)
  | Histogram of Histogram.t

type t

val create : unit -> t

val prefixed : t -> string -> t
(** A view of the same registry that prepends [prefix] to every name it
    registers or looks up.  The underlying table is shared: metrics
    registered through [prefixed reg "shard0."] appear in [reg]'s dumps as
    ["shard0.<name>"].  Views compose ([prefixed (prefixed r "a.") "b."]
    prefixes ["a.b."]); {!sorted}, {!dump}, {!to_json} and {!reset} always
    operate on the whole shared table. *)

val prefix : t -> string
(** The accumulated prefix of this view (empty for a root registry). *)

val counter : t -> string -> Counter.t
(** Find or create.  Raises [Invalid_argument] if the name is registered as
    a different kind. *)

val histogram : t -> string -> Histogram.t
(** Find or create, same contract as {!counter}. *)

val gauge : t -> string -> (unit -> int) -> unit
(** Register a closure evaluated at dump time. *)

val attach_counter : t -> Counter.t -> unit
val attach_histogram : t -> Histogram.t -> unit

val find : t -> string -> metric option

val value : t -> string -> int option
(** Current integer value: counter value, gauge reading, or histogram sample
    count. *)

val sorted : t -> (string * metric) list
val cardinal : t -> int

val reset : t -> unit
(** Reset counters and histograms; gauges read live state and are left
    alone. *)

val dump : t -> string
(** Render as an aligned text table. *)

val to_json : t -> string
(** One JSON object, keys sorted; histograms become summary objects. *)
