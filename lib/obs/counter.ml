(* A named monotonic (but resettable) integer counter.  Counters are plain
   mutable cells so the hot paths that bump them (lock grants, page hits,
   reorganization units) pay one store; the registry holds a reference and
   reads the value only at dump time. *)

type t = { name : string; mutable value : int }

let make name = { name; value = 0 }
let name t = t.name
let get t = t.value
let incr ?(by = 1) t = t.value <- t.value + by
let set t v = t.value <- v
let reset t = t.value <- 0
let pp ppf t = Format.fprintf ppf "%s=%d" t.name t.value
