(* A named sample collector.  Samples are kept raw (growable array) so the
   summary can report exact percentiles; the simulated runs this repo cares
   about collect thousands of samples, not millions, and determinism matters
   more than memory.  Summaries come from [Util.Stats.summarize], which
   returns the all-zero summary for an empty histogram — an empty bucket
   must never crash a metrics dump. *)

type t = { name : string; mutable samples : float array; mutable len : int }

let make name = { name; samples = Array.make 16 0.0; len = 0 }

let name t = t.name
let count t = t.len

let observe t x =
  if t.len = Array.length t.samples then begin
    let fresh = Array.make (2 * t.len) 0.0 in
    Array.blit t.samples 0 fresh 0 t.len;
    t.samples <- fresh
  end;
  t.samples.(t.len) <- x;
  t.len <- t.len + 1

let observe_int t n = observe t (float_of_int n)

let samples t = Array.sub t.samples 0 t.len

let summary t = Util.Stats.summarize (samples t)

let total t =
  let acc = ref 0.0 in
  for i = 0 to t.len - 1 do
    acc := !acc +. t.samples.(i)
  done;
  !acc

let reset t = t.len <- 0

let pp ppf t = Format.fprintf ppf "%s: %a" t.name Util.Stats.pp_summary (summary t)
