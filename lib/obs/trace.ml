(* Deterministic span/event tracing.

   Events are stamped with *logical* time from an injected clock — in this
   repo, [Sched.Engine] ticks — so two runs with the same seed produce
   byte-identical traces.  Never stamp events with wall-clock time.

   The recorded stream exports to:
   - Chrome [trace_event] JSON (load in chrome://tracing or
     https://ui.perfetto.dev): spans become "ph":"X" complete events,
     instants "ph":"i", thread names "ph":"M" metadata.  Logical ticks are
     emitted directly as microseconds.
   - a compact text timeline for terminals and diffs.

   "Threads" (tid) are scheduler fibers: one row per process in the UI, so
   a trace shows reorganizer passes on one row and each user transaction's
   lock waits on its own row. *)

type arg = Int of int | Float of float | Str of string

type event =
  | Span of {
      name : string;
      cat : string;
      tid : int;
      ts : int;
      dur : int;
      args : (string * arg) list;
    }
  | Instant of { name : string; cat : string; tid : int; ts : int; args : (string * arg) list }
  | Counter of { name : string; cat : string; tid : int; ts : int; args : (string * arg) list }

type pending = { p_name : string; p_cat : string; p_ts : int; p_args : (string * arg) list }

type t = {
  mutable clock : unit -> int;
  mutable events : event list; (* reversed *)
  mutable count : int;
  mutable limit : int; (* drop events beyond this many; 0 = unlimited *)
  mutable dropped : int;
  stacks : (int, pending list ref) Hashtbl.t; (* open spans per tid *)
  mutable threads : (int * string) list; (* registration order, reversed *)
}

let create ?(clock = fun () -> 0) ?(limit = 0) () =
  {
    clock;
    events = [];
    count = 0;
    limit;
    dropped = 0;
    stacks = Hashtbl.create 8;
    threads = [];
  }

let set_clock t clock = t.clock <- clock
let now t = t.clock ()
let event_count t = t.count
let dropped t = t.dropped

let clear t =
  t.events <- [];
  t.count <- 0;
  t.dropped <- 0;
  Hashtbl.reset t.stacks;
  t.threads <- []

let name_thread t ~tid name =
  if not (List.mem_assoc tid t.threads) then t.threads <- (tid, name) :: t.threads

let record t ev =
  if t.limit > 0 && t.count >= t.limit then t.dropped <- t.dropped + 1
  else begin
    t.events <- ev :: t.events;
    t.count <- t.count + 1
  end

let instant t ?(tid = 0) ?(args = []) ~cat name =
  record t (Instant { name; cat; tid; ts = t.clock (); args })

(* Chrome "ph":"C" counter sample: each numeric arg becomes one series in
   the counter track.  Used by the health sampler's time-series ticks. *)
let counter t ?(tid = 0) ~cat name args =
  record t (Counter { name; cat; tid; ts = t.clock (); args })

let complete t ?(tid = 0) ?(args = []) ~cat ~ts ~dur name =
  record t (Span { name; cat; tid; ts; dur; args })

let stack t tid =
  match Hashtbl.find_opt t.stacks tid with
  | Some s -> s
  | None ->
    let s = ref [] in
    Hashtbl.replace t.stacks tid s;
    s

let begin_span t ?(tid = 0) ?(args = []) ~cat name =
  let s = stack t tid in
  s := { p_name = name; p_cat = cat; p_ts = t.clock (); p_args = args } :: !s

(* [args] given at the end (e.g. an outcome) are appended to the ones given
   at the beginning. *)
let end_span t ?(tid = 0) ?(args = []) () =
  let s = stack t tid in
  match !s with
  | [] -> invalid_arg "Trace.end_span: no open span for tid"
  | p :: rest ->
    s := rest;
    let ts = p.p_ts in
    record t
      (Span
         {
           name = p.p_name;
           cat = p.p_cat;
           tid;
           ts;
           dur = t.clock () - ts;
           args = p.p_args @ args;
         })

let with_span t ?tid ?args ~cat name f =
  begin_span t ?tid ?args ~cat name;
  Fun.protect ~finally:(fun () -> end_span t ?tid ()) f

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let emit_arg buf = function
  | Int n -> Json.int buf n
  | Float x -> Json.float buf x
  | Str s -> Json.string buf s

let emit_args buf args = Json.obj buf (List.map (fun (k, v) -> (k, fun b -> emit_arg b v)) args)

let emit_event buf ev =
  let common ~name ~cat ~ph ~tid ~ts ~args extra =
    Json.obj buf
      ([
         ("name", fun b -> Json.string b name);
         ("cat", fun b -> Json.string b cat);
         ("ph", fun b -> Json.string b ph);
         ("pid", fun b -> Json.int b 1);
         ("tid", fun b -> Json.int b tid);
         ("ts", fun b -> Json.int b ts);
       ]
      @ extra
      @ (if args = [] then [] else [ ("args", fun b -> emit_args b args) ]))
  in
  match ev with
  | Span { name; cat; tid; ts; dur; args } ->
    common ~name ~cat ~ph:"X" ~tid ~ts ~args [ ("dur", fun b -> Json.int b dur) ]
  | Instant { name; cat; tid; ts; args } ->
    common ~name ~cat ~ph:"i" ~tid ~ts ~args [ ("s", fun b -> Json.string b "t") ]
  | Counter { name; cat; tid; ts; args } -> common ~name ~cat ~ph:"C" ~tid ~ts ~args []

let emit_thread_meta buf (tid, name) =
  Json.obj buf
    [
      ("name", fun b -> Json.string b "thread_name");
      ("ph", fun b -> Json.string b "M");
      ("pid", fun b -> Json.int b 1);
      ("tid", fun b -> Json.int b tid);
      ( "args",
        fun b -> Json.obj b [ ("name", fun b -> Json.string b name) ] );
    ]

let to_chrome_json t =
  let buf = Buffer.create 4096 in
  let metas =
    List.map (fun th buf -> emit_thread_meta buf th) (List.rev t.threads)
  in
  let events = List.map (fun ev buf -> emit_event buf ev) (List.rev t.events) in
  Json.obj buf
    [
      ("traceEvents", fun b -> Json.arr b (metas @ events));
      ("displayTimeUnit", fun b -> Json.string b "ms");
    ];
  Buffer.contents buf

let write_chrome t file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_chrome_json t);
      output_char oc '\n')

let arg_to_string = function
  | Int n -> string_of_int n
  | Float x -> Printf.sprintf "%g" x
  | Str s -> s

let args_to_string args =
  String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (arg_to_string v)) args)

let thread_label t tid =
  match List.assoc_opt tid t.threads with
  | Some name -> name
  | None -> Printf.sprintf "tid-%d" tid

(* Compact text timeline, one line per event in recording order.  Spans are
   printed at their start time with their duration, which keeps the file
   diffable and roughly chronological. *)
let to_timeline t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun ev ->
      (match ev with
      | Span { name; cat; tid; ts; dur; args } ->
        Buffer.add_string buf
          (Printf.sprintf "%8d %-14s span    %s:%s dur=%d%s" ts (thread_label t tid) cat name
             dur
             (if args = [] then "" else " " ^ args_to_string args))
      | Instant { name; cat; tid; ts; args } ->
        Buffer.add_string buf
          (Printf.sprintf "%8d %-14s instant %s:%s%s" ts (thread_label t tid) cat name
             (if args = [] then "" else " " ^ args_to_string args))
      | Counter { name; cat; tid; ts; args } ->
        Buffer.add_string buf
          (Printf.sprintf "%8d %-14s counter %s:%s%s" ts (thread_label t tid) cat name
             (if args = [] then "" else " " ^ args_to_string args)));
      Buffer.add_char buf '\n')
    (List.rev t.events)
  |> ignore;
  Buffer.contents buf

(* Count recorded events whose name matches, a convenience for tests and
   summaries. *)
let count_named t name =
  List.fold_left
    (fun acc ev ->
      match ev with
      | Span { name = n; _ } | Instant { name = n; _ } | Counter { name = n; _ } ->
        if n = name then acc + 1 else acc)
    0 t.events
