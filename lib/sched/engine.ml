open Effect
open Effect.Deep

type _ Effect.t +=
  | Yield : unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Sleep : int -> unit Effect.t
  | Now : int Effect.t
  | Self : int Effect.t
  | Spawn : (string option * (unit -> unit)) -> unit Effect.t

(* A fiber is one cooperative process.  Fibers carry an id and a name so the
   tracer can put each process on its own timeline row, and so blocked time
   can be attributed to the process that waited. *)
type fiber = { fid : int; fname : string }

type t = {
  mutable runq : (fiber * (unit -> unit)) list; (* reversed tail for O(1) push *)
  mutable runq_front : (fiber * (unit -> unit)) list;
  mutable timers : (int * fiber * (unit -> unit)) list; (* sorted by time *)
  mutable time : int;
  mutable stop : bool;
  mutable live : int;
  rng : Util.Rng.t option;
  (* --- observability --- *)
  mutable cur : fiber; (* fiber owning the currently running slice *)
  mutable next_fid : int;
  dispatches : Obs.Counter.t;
  spawned : Obs.Counter.t;
  blocked : Obs.Histogram.t; (* per-wait blocked ticks, over all fibers *)
  mutable tracer : Obs.Trace.t option;
}

let root_fiber = { fid = 0; fname = "main" }

(* Benchmark harnesses install hooks to observe every engine a scenario
   creates (experiments build engines internally).  Hooks compose: each
   registration gets an id and removes only itself, so two concurrently
   active observers (e.g. a stat collector wrapping a demo that installs
   its own) no longer clobber each other. *)
let create_hooks : (int * (t -> unit)) list ref = ref [] (* newest first *)
let next_hook_id = ref 0

let add_create_hook f =
  incr next_hook_id;
  let id = !next_hook_id in
  create_hooks := (id, f) :: !create_hooks;
  id

let remove_create_hook id = create_hooks := List.filter (fun (i, _) -> i <> id) !create_hooks

let create ?(seed = 0) ?(random = false) () =
  let t =
    {
      runq = [];
      runq_front = [];
      timers = [];
      time = 0;
      stop = false;
      live = 0;
      rng = (if random then Some (Util.Rng.create seed) else None);
      cur = root_fiber;
      next_fid = 1;
      dispatches = Obs.Counter.make "sched.dispatches";
      spawned = Obs.Counter.make "sched.spawned";
      blocked = Obs.Histogram.make "sched.blocked_ticks";
      tracer = None;
    }
  in
  List.iter (fun (_, f) -> f t) (List.rev !create_hooks);
  t

let set_tracer t tracer =
  t.tracer <- tracer;
  match tracer with
  | Some tr ->
    Obs.Trace.set_clock tr (fun () -> t.time);
    Obs.Trace.name_thread tr ~tid:root_fiber.fid root_fiber.fname
  | None -> ()

let tracer t = t.tracer

let register_obs t reg =
  Obs.Registry.attach_counter reg t.dispatches;
  Obs.Registry.attach_counter reg t.spawned;
  Obs.Registry.attach_histogram reg t.blocked;
  Obs.Registry.gauge reg "sched.time" (fun () -> t.time);
  Obs.Registry.gauge reg "sched.live" (fun () -> t.live)

let blocked_ticks t = t.blocked

let enqueue t fib thunk = t.runq <- (fib, thunk) :: t.runq

let runq_len t = List.length t.runq + List.length t.runq_front

let pop_fifo t =
  match t.runq_front with
  | x :: rest ->
    t.runq_front <- rest;
    Some x
  | [] -> begin
    match List.rev t.runq with
    | [] -> None
    | x :: rest ->
      t.runq <- [];
      t.runq_front <- rest;
      Some x
  end

let pop_random t rng =
  let n = runq_len t in
  if n = 0 then None
  else begin
    let all = t.runq_front @ List.rev t.runq in
    let i = Util.Rng.int rng n in
    let picked = List.nth all i in
    let rest = List.filteri (fun j _ -> j <> i) all in
    t.runq_front <- rest;
    t.runq <- [];
    Some picked
  end

let pop t = match t.rng with Some rng -> pop_random t rng | None -> pop_fifo t

let add_timer t at fib thunk =
  let rec insert = function
    | [] -> [ (at, fib, thunk) ]
    | ((a, _, _) as hd) :: rest when a <= at -> hd :: insert rest
    | rest -> (at, fib, thunk) :: rest
  in
  t.timers <- insert t.timers

(* Record the end of a genuine wait (a [Suspend], i.e. a lock queue, a wait
   queue, a durability callback): blocked from [since] until now. *)
let note_unblocked t fib ~since =
  let dur = t.time - since in
  Obs.Histogram.observe_int t.blocked dur;
  match t.tracer with
  | Some tr when dur > 0 ->
    Obs.Trace.complete tr ~tid:fib.fid ~cat:"sched" ~ts:since ~dur "blocked"
  | _ -> ()

let rec exec t fn =
  match_with fn ()
    {
      retc = (fun () -> t.live <- t.live - 1);
      exnc = (fun e -> t.live <- t.live - 1; raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
            Some
              (fun (k : (a, _) continuation) ->
                let fib = t.cur in
                enqueue t fib (fun () -> continue k ()))
          | Suspend register ->
            Some
              (fun (k : (a, _) continuation) ->
                let fib = t.cur in
                let since = t.time in
                let resumed = ref false in
                register (fun () ->
                    if !resumed then invalid_arg "Engine: resume called twice";
                    resumed := true;
                    enqueue t fib (fun () ->
                        note_unblocked t fib ~since;
                        continue k ())))
          | Sleep n ->
            Some
              (fun (k : (a, _) continuation) ->
                let fib = t.cur in
                add_timer t (t.time + max 1 n) fib (fun () -> continue k ()))
          | Now -> Some (fun (k : (a, _) continuation) -> continue k t.time)
          | Self -> Some (fun (k : (a, _) continuation) -> continue k t.cur.fid)
          | Spawn (name, f) ->
            Some
              (fun (k : (a, _) continuation) ->
                spawn t ?name f;
                continue k ())
          | _ -> None);
    }

and spawn t ?name fn =
  let fid = t.next_fid in
  t.next_fid <- fid + 1;
  let fname = match name with Some n -> n | None -> Printf.sprintf "proc-%d" fid in
  let fib = { fid; fname } in
  (match t.tracer with Some tr -> Obs.Trace.name_thread tr ~tid:fid fname | None -> ());
  Obs.Counter.incr t.spawned;
  t.live <- t.live + 1;
  enqueue t fib (fun () -> exec t fn)

let release_due_timers t =
  let rec go () =
    match t.timers with
    | (at, fib, thunk) :: rest when at <= t.time ->
      t.timers <- rest;
      enqueue t fib thunk;
      go ()
    | _ -> ()
  in
  go ()

let run t =
  let rec loop () =
    if t.stop then ()
    else begin
      release_due_timers t;
      match pop t with
      | Some (fib, thunk) ->
        t.time <- t.time + 1;
        t.cur <- fib;
        Obs.Counter.incr t.dispatches;
        thunk ();
        loop ()
      | None -> begin
        (* Idle: jump to the next timer. *)
        match t.timers with
        | [] -> ()
        | (at, _, _) :: _ ->
          t.time <- max t.time at;
          loop ()
      end
    end
  in
  loop ()

let stop t = t.stop <- true
let stopped t = t.stop
let now t = t.time
let live t = t.live
let dispatches t = Obs.Counter.get t.dispatches

let yield () = perform Yield
let suspend register = perform (Suspend register)
let sleep n = perform (Sleep n)
let current_time () = perform Now
let current_fiber () = perform Self
let spawn_child ?name fn = perform (Spawn (name, fn))
