(* A background system process: a fiber that wakes every [every] ticks, runs
   its body, and exits once [until ()] holds.  The durability pipeline's
   group-commit ticker, elevator flusher and checkpointer are all daemons;
   keeping the loop here keeps their exit discipline uniform (checked after
   each sleep, so a daemon never runs its body on a dead system). *)

let spawn eng ?(name = "daemon") ~every ~until body =
  Engine.spawn eng ~name (fun () ->
      let rec loop () =
        if not (until ()) then begin
          Engine.sleep every;
          if not (until ()) then begin
            body ();
            loop ()
          end
        end
      in
      loop ())
