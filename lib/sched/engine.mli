(** Deterministic cooperative scheduler.

    Concurrency in this repository — readers, updaters and the reorganizer
    running "simultaneously" — is expressed as cooperative processes on this
    engine, built on OCaml 5 effect handlers.  Interleavings are driven purely
    by a seed, so every concurrency and crash experiment replays exactly.

    Time is logical: {!now} counts dispatches, and {!sleep} parks a process
    for that many dispatches.  Blocked time measured in these units is the
    unit of the paper's "how long do user transactions wait" comparisons. *)

type t

val create : ?seed:int -> ?random:bool -> unit -> t
(** [random:true] picks the next runnable pseudo-randomly (seeded) instead of
    FIFO — used by stress tests to explore interleavings. *)

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** Register a process.  It starts running at the next dispatch. *)

val run : t -> unit
(** Dispatch until no process is runnable and no timer is pending, or until
    {!stop}.  Processes still suspended at that point (e.g. parked on a lock
    that nobody will release, or beyond a {!stop}) simply never resume —
    which is exactly what a crash does to them. *)

val stop : t -> unit
(** Make {!run} return after the current slice — the crash switch. *)

val stopped : t -> bool

val now : t -> int
val live : t -> int
(** Processes spawned but not yet finished. *)

(** {2 Observability}

    The engine is the source of logical time, so it is also the natural
    anchor for deterministic tracing: {!set_tracer} points the tracer's
    clock at this engine and gives every spawned process its own timeline
    row (named after [spawn]'s [?name]).  While a tracer is attached, every
    completed {!suspend} wait is recorded as a ["blocked"] span on the
    waiting process's row. *)

val set_tracer : t -> Obs.Trace.t option -> unit
val tracer : t -> Obs.Trace.t option

val register_obs : t -> Obs.Registry.t -> unit
(** Register [sched.dispatches], [sched.spawned], [sched.blocked_ticks]
    (histogram of per-wait blocked durations), [sched.time] and
    [sched.live]. *)

val add_create_hook : (t -> unit) -> int
(** Register a global hook called with every engine subsequently created —
    benchmark harnesses use it to find the engines an experiment builds
    internally (and to sum their logical clocks).  Hooks compose: each
    registration is independent and runs in registration order.  Returns an
    id for {!remove_create_hook}. *)

val remove_create_hook : int -> unit
(** Remove one hook by id; unknown ids are ignored. *)

val dispatches : t -> int
val blocked_ticks : t -> Obs.Histogram.t

(** {2 Primitives usable only inside a process} *)

val yield : unit -> unit
(** Give up the processor; resume after currently queued work. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] captures the continuation and calls
    [register resume].  The process sleeps until [resume ()] is called
    (calling it more than once is an error). *)

val sleep : int -> unit
(** Park for [n] dispatch ticks. *)

val current_time : unit -> int
(** {!now} from inside a process. *)

val current_fiber : unit -> int
(** Id of the calling process — the [tid] used for its trace timeline row. *)

val spawn_child : ?name:string -> (unit -> unit) -> unit
(** Spawn from inside a process. *)
