(** Periodic background processes on the cooperative scheduler.

    [spawn eng ~every ~until body] starts a fiber that sleeps [every] ticks,
    re-checks [until], runs [body], and repeats; it exits (without running
    [body] again) as soon as [until ()] is true at a wakeup.  The async
    durability pipeline builds its group-commit ticker, elevator page
    flusher and fuzzy checkpointer out of these. *)

val spawn :
  Engine.t -> ?name:string -> every:int -> until:(unit -> bool) -> (unit -> unit) -> unit
