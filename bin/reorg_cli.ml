(* reorg-cli: drive the simulated database from the command line.

   The database lives for one invocation (the disk is in-memory), so each
   subcommand builds a scenario, acts on it, and reports — a REPL-style tour
   of the system:

     reorg-cli demo                          # build, degrade, reorganize
     reorg-cli reorganize --records 5000 --fill 0.25 --no-swap
     reorg-cli inspect --records 2000 --fill 0.3
     reorg-cli crash --at 150                # crash + forward recovery
     reorg-cli workload --users 8 --mix update-heavy
     reorg-cli torture --seed 42 --stride 1  # crash at every write boundary *)

open Cmdliner

let setup_logs () = ()

(* ------------- shared options ------------- *)

let records_t =
  Arg.(value & opt int 2000 & info [ "records"; "n" ] ~docv:"N" ~doc:"Number of records.")

let fill_t =
  Arg.(value & opt float 0.3 & info [ "fill"; "f1" ] ~docv:"F" ~doc:"Initial leaf fill factor.")

let f2_t =
  Arg.(value & opt float 0.9 & info [ "f2" ] ~docv:"F" ~doc:"Target leaf fill factor.")

let seed_t = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let page_size_t =
  Arg.(value & opt int 512 & info [ "page-size" ] ~docv:"BYTES" ~doc:"Page size in bytes.")

let no_swap_t =
  Arg.(value & flag & info [ "no-swap" ] ~doc:"Skip pass 2 (swapping is optional in the paper).")

let no_shrink_t = Arg.(value & flag & info [ "no-shrink" ] ~doc:"Skip pass 3.")

let workers_t =
  Arg.(
    value & opt int 1
    & info [ "workers" ] ~docv:"N" ~doc:"Parallel pass-1 workers (future-work extension).")

let lambda_t =
  Arg.(
    value & flag
    & info [ "lambda" ]
        ~doc:"Use the lambda-tree switch variant (no forced aborts, deferred cleanup).")

let heuristic_t =
  let policy =
    Arg.enum
      [
        ("paper", Reorg.Config.Paper_heuristic);
        ("first-free", Reorg.Config.First_free);
        ("none", Reorg.Config.No_new_place);
      ]
  in
  Arg.(
    value
    & opt policy Reorg.Config.Paper_heuristic
    & info [ "heuristic" ] ~docv:"POLICY" ~doc:"Find-Free-Space policy: paper, first-free, none.")

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON timeline of the run to $(docv) (open in \
           chrome://tracing or ui.perfetto.dev).")

let metrics_t =
  Arg.(
    value & flag
    & info [ "metrics" ] ~doc:"Dump the metrics registry (all subsystems) after the run.")

let health_t =
  Arg.(
    value & flag
    & info [ "health" ]
        ~doc:
          "Print the tree-health table after the run: fill-factor histogram buckets, \
           fragmentation index, side-file backlog, allocator churn.")

(* Build the run's observability objects from the flags: a registry whenever
   either flag wants one (the trace is more useful with the counters
   alongside), a tracer only when a file was requested. *)
let obs_setup ~trace ~metrics =
  let registry = if metrics then Some (Obs.Registry.create ()) else None in
  let tracer = if trace <> None then Some (Obs.Trace.create ()) else None in
  (registry, tracer)

let obs_report ~trace registry tracer =
  (match (trace, tracer) with
  | Some file, Some tr ->
    Obs.Trace.write_chrome tr file;
    Printf.printf "trace: %d events -> %s (chrome://tracing or ui.perfetto.dev)\n"
      (Obs.Trace.event_count tr) file
  | _ -> ());
  match registry with
  | Some reg ->
    print_endline "--- metrics ---";
    print_string (Obs.Registry.dump reg)
  | None -> ()

(* --health: the incremental tracker's view, rendered through the same
   registry table dump the --metrics flag uses (a registry holding just the
   health.* gauges), plus a readable fill histogram. *)
let health_report ~health db =
  if health then begin
    let h = db.Sim.Db.health in
    let st = Obs.Health.stats h in
    print_endline "--- tree health ---";
    let reg = Obs.Registry.create () in
    Obs.Health.register_obs h reg;
    print_string (Obs.Registry.dump reg);
    let total = max 1 st.Obs.Health.leaves in
    print_endline "fill-factor histogram (leaves per decile):";
    Array.iteri
      (fun i n ->
        Printf.printf "  %3d-%3d%% %6d %s\n" (i * 10)
          ((i + 1) * 10)
          n
          (String.make (50 * n / total) '#'))
      st.Obs.Health.fill_buckets;
    Printf.printf
      "utilization %.1f%%, fragmentation %.1f%% (%d chain breaks / %d leaves), side-file \
       backlog %d (peak %d), free leaf pages %d\n"
      (100.0 *. st.Obs.Health.utilization)
      (100.0 *. st.Obs.Health.fragmentation)
      st.Obs.Health.chain_breaks st.Obs.Health.leaves st.Obs.Health.backlog
      st.Obs.Health.backlog_peak st.Obs.Health.free_pages
  end

(* The CLI's contract: a run that leaves the tree in a bad state must not
   exit 0, even though the report above printed fine. *)
let check_invariants db =
  match Btree.Invariant.check ~alloc:db.Sim.Db.alloc db.Sim.Db.tree with
  | () -> print_endline "invariants OK"
  | exception e ->
    Printf.eprintf "invariant check FAILED: %s\n" (Printexc.to_string e);
    exit 2

let mk_config ~f2 ~no_swap ~no_shrink ~heuristic ~lambda =
  {
    Reorg.Config.default with
    Reorg.Config.f2;
    swap_pass = not no_swap;
    shrink_pass = not no_shrink;
    heuristic;
    lambda_switch = lambda;
  }

let print_tree_stats label tree =
  let s = Btree.Tree.stats tree in
  Printf.printf "%-10s height=%d leaves=%d internal=%d records=%d fill avg=%.0f%% min=%.0f%%\n"
    label s.Btree.Tree.height s.Btree.Tree.leaf_count s.Btree.Tree.internal_count
    s.Btree.Tree.record_count
    (100.0 *. s.Btree.Tree.avg_leaf_fill)
    (100.0 *. s.Btree.Tree.min_leaf_fill)

(* ------------- subcommands ------------- *)

let demo trace metrics health =
  setup_logs ();
  let db, _ = Sim.Scenario.aged ~seed:42 ~n:2000 ~f1:0.25 () in
  print_tree_stats "before" db.Sim.Db.tree;
  let registry, tracer = obs_setup ~trace ~metrics in
  let ctx, report, _ = Sim.Scenario.run_reorg ?registry ?tracer db in
  print_tree_stats "after" db.Sim.Db.tree;
  Format.printf "report: %a@." Reorg.Driver.pp_report report;
  Format.printf "metrics: %a@." Reorg.Metrics.pp ctx.Reorg.Ctx.metrics;
  obs_report ~trace registry tracer;
  health_report ~health db;
  check_invariants db

let reorganize records fill f2 seed page_size no_swap no_shrink heuristic lambda workers trace
    metrics health =
  setup_logs ();
  let db, _ = Sim.Scenario.aged ~page_size ~seed ~n:records ~f1:fill () in
  print_tree_stats "before" db.Sim.Db.tree;
  let config = mk_config ~f2 ~no_swap ~no_shrink ~heuristic ~lambda in
  let registry, tracer = obs_setup ~trace ~metrics in
  let ctx = Reorg.Ctx.make ?registry ?tracer ~access:db.Sim.Db.access ~config () in
  let eng = Sched.Engine.create () in
  Sched.Engine.set_tracer eng tracer;
  Sim.Db.set_tracers db tracer;
  (match registry with
  | Some reg ->
    Sched.Engine.register_obs eng reg;
    Sim.Db.register_obs db reg
  | None -> ());
  let report = ref Reorg.Driver.empty_report in
  Sched.Engine.spawn eng ~name:"reorganizer" (fun () ->
      report := Reorg.Driver.run ~pass1_workers:workers ctx);
  Sched.Engine.run eng;
  let report = !report in
  print_tree_stats "after" db.Sim.Db.tree;
  Format.printf "report: %a@." Reorg.Driver.pp_report report;
  Format.printf "metrics: %a@." Reorg.Metrics.pp ctx.Reorg.Ctx.metrics;
  let log_stats = Wal.Log.stats db.Sim.Db.log in
  Printf.printf "log: %d records, %s total\n" log_stats.Wal.Log.records
    (Util.Table.fmt_bytes log_stats.Wal.Log.bytes);
  obs_report ~trace registry tracer;
  health_report ~health db;
  check_invariants db

let inspect records fill seed page_size verbose =
  setup_logs ();
  let db, _ = Sim.Scenario.aged ~page_size ~seed ~n:records ~f1:fill () in
  print_tree_stats "tree" db.Sim.Db.tree;
  if verbose then begin
    print_string (Btree.Dump.tree db.Sim.Db.tree);
    print_endline "--- leaf chain ---";
    print_string (Btree.Dump.leaf_chain db.Sim.Db.tree)
  end;
  (* Physical layout of the leaf zone. *)
  let lo, _ = Pager.Alloc.leaf_zone db.Sim.Db.alloc in
  let leaves = Btree.Tree.leaf_pids db.Sim.Db.tree in
  Printf.printf "leaf zone starts at page %d; %d leaves; first 20 (key order): %s\n" lo
    (List.length leaves)
    (String.concat " " (List.map string_of_int (List.filteri (fun i _ -> i < 20) leaves)));
  let ooo = ref 0 in
  List.iteri (fun i pid -> if pid <> lo + i then incr ooo) leaves;
  Printf.printf "out of disk order: %d of %d\n" !ooo (List.length leaves)

let crash at records seed =
  setup_logs ();
  let db, expected = Sim.Scenario.aged ~seed ~n:records ~f1:0.3 () in
  let ctx = Reorg.Ctx.make ~access:db.Sim.Db.access ~config:Reorg.Config.default () in
  let eng = Sched.Engine.create () in
  Sched.Engine.spawn eng (fun () -> ignore (Reorg.Driver.run ctx));
  Sched.Engine.spawn eng (fun () ->
      Sched.Engine.sleep at;
      Sched.Engine.stop eng);
  Sched.Engine.run eng;
  Printf.printf "crash at tick %d: %d units complete, LK=%d\n" at
    (Reorg.Metrics.units ctx.Reorg.Ctx.metrics)
    (Reorg.Rtable.lk ctx.Reorg.Ctx.rtable);
  Sim.Db.crash_now ~flush_seed:seed db;
  let ctx2, outcome =
    Reorg.Recovery.restart ~access:db.Sim.Db.access ~config:Reorg.Config.default ()
  in
  Printf.printf "restart: redo=%d losers=%d finished-unit=%s resume=%s\n"
    outcome.Reorg.Recovery.redo_applied outcome.Reorg.Recovery.losers_undone
    (match outcome.Reorg.Recovery.finished_unit with None -> "-" | Some u -> string_of_int u)
    (match outcome.Reorg.Recovery.resume with
    | Reorg.Recovery.No_reorg -> "nothing"
    | Reorg.Recovery.Resume_passes { lk } -> Printf.sprintf "leaf passes from LK=%d" lk
    | Reorg.Recovery.Resume_pass3 { stable_key; _ } ->
      Printf.sprintf "pass 3 from stable key %d" stable_key
    | Reorg.Recovery.Finish_switch _ -> "finish switch");
  let eng2 = Sched.Engine.create () in
  Sched.Engine.spawn eng2 (fun () ->
      ignore (Reorg.Recovery.resume_reorganization ctx2 outcome));
  Sched.Engine.run eng2;
  Btree.Invariant.check ~alloc:db.Sim.Db.alloc db.Sim.Db.tree;
  Btree.Invariant.check_consistent_with db.Sim.Db.tree ~expected;
  print_tree_stats "after" db.Sim.Db.tree;
  print_endline "all records intact, invariants OK"

let torture seed stride records users pipeline olc trace metrics =
  setup_logs ();
  let registry, tracer = obs_setup ~trace ~metrics in
  match Sim.Torture.run ?registry ?tracer ~seed ~stride ~n:records ~users ~pipeline ~olc () with
  | r ->
    Printf.printf
      "torture: seed=%d stride=%d\n\
       boundaries: %d page writes, %d log forces\n\
       tested %d crash points: %d crashed, %d survived to the end\n\
       faults: %d torn page writes, %d torn WAL tails (%d repaired on recovery)\n\
       recovery finished %d interrupted units forward\n"
      seed stride r.Sim.Torture.write_boundaries r.Sim.Torture.force_boundaries
      r.Sim.Torture.points r.Sim.Torture.crashes r.Sim.Torture.survivors
      r.Sim.Torture.torn_writes r.Sim.Torture.torn_tails r.Sim.Torture.torn_repaired
      r.Sim.Torture.units_finished;
    obs_report ~trace registry tracer;
    print_endline "all crash points recovered, invariants OK"
  | exception Sim.Torture.Failed msg ->
    obs_report ~trace registry tracer;
    Printf.eprintf "torture FAILED: %s\n" msg;
    exit 2

(* --shards N >= 2: the keyspace-sharded engine.  One store, reorganizer
   and WAL per shard; user transactions go through the router and the
   cross-shard 2PL coordinator instead of a single tree. *)
let sharded_workload ~users ~mix ~records ~seed ~shards ~trace ~metrics =
  let registry, tracer = obs_setup ~trace ~metrics in
  let t, _ = Sim.Sharded.thinned ~seed ~n:records ~survive:0.35 ~shards () in
  let outcome, stats =
    Sim.Sharded.reorg_with_users ?registry ?tracer ~user_mix:mix ~users ~seed:(seed + 1)
      ~key_space:(2 * records) t
  in
  Array.iteri
    (fun i (r : Reorg.Driver.report) ->
      Format.printf "shard %d reorg: %a@." i Reorg.Driver.pp_report r)
    outcome.Sim.Sharded.reports;
  Printf.printf "mixed-phase ticks: %d (reorganizers + %d cross-shard users on one engine)\n"
    outcome.Sim.Sharded.makespan users;
  let cs = Shard.Coordinator.stats t.Sim.Sharded.coord in
  Printf.printf
    "coordinator: %d begun, %d committed (%d cross-shard), %d aborted, %d commit records\n"
    cs.Shard.Coordinator.begun cs.Shard.Coordinator.committed
    cs.Shard.Coordinator.cross_shard_commits cs.Shard.Coordinator.aborted
    cs.Shard.Coordinator.commit_records;
  Printf.printf
    "users: %d committed (%d reads, %d inserts, %d deletes), %d give-ups, %d aborts, %d \
     blocked ticks\n"
    stats.Workload.Mix.committed stats.Workload.Mix.reads stats.Workload.Mix.inserts
    stats.Workload.Mix.deletes stats.Workload.Mix.give_ups stats.Workload.Mix.aborted
    stats.Workload.Mix.blocked_ticks;
  obs_report ~trace registry tracer;
  match Sim.Sharded.check_invariants t with
  | () -> Printf.printf "invariants OK (all %d shards)\n" shards
  | exception e ->
    Printf.eprintf "invariant check FAILED: %s\n" (Printexc.to_string e);
    exit 2

let workload users mix_name records seed shards trace metrics health =
  setup_logs ();
  let mix =
    match mix_name with
    | "read-only" -> Workload.Mix.read_only
    | "update-heavy" -> Workload.Mix.update_heavy
    | _ -> Workload.Mix.read_mostly
  in
  if shards > 1 then sharded_workload ~users ~mix ~records ~seed ~shards ~trace ~metrics
  else begin
  let db, _ = Sim.Scenario.aged ~seed ~n:records ~f1:0.3 () in
  let registry, tracer = obs_setup ~trace ~metrics in
  let ctx, report, stats = Sim.Scenario.run_reorg ?registry ?tracer ~users ~user_mix:mix db in
  Format.printf "reorg: %a@." Reorg.Driver.pp_report report;
  Format.printf "metrics: %a@." Reorg.Metrics.pp ctx.Reorg.Ctx.metrics;
  Printf.printf
    "users: %d committed (%d reads, %d inserts, %d deletes), %d give-ups, %d aborts, %d \
     blocked ticks\n"
    stats.Workload.Mix.committed stats.Workload.Mix.reads stats.Workload.Mix.inserts
    stats.Workload.Mix.deletes stats.Workload.Mix.give_ups stats.Workload.Mix.aborted
    stats.Workload.Mix.blocked_ticks;
  obs_report ~trace registry tracer;
  health_report ~health db;
  check_invariants db
  end


(* Model conformance: replay the seeded workloads and crash sweeps through
   the protocol models (lib/model), or run a mutation self-test that proves
   the checker catches a deliberately broken protocol.  Exit code 2 whenever
   a violation is reported — which is the EXPECTED outcome of the mutation
   runs (CI asserts it). *)
let model seeds experiments stride records pipeline olc mutate =
  setup_logs ();
  let split s = String.split_on_char ',' s |> List.filter (fun x -> x <> "") in
  match mutate with
  | "none" ->
    let seeds =
      try List.map int_of_string (split seeds)
      with Failure _ ->
        Printf.eprintf "model: --seeds wants a comma-separated list of integers\n";
        exit 1
    in
    let summaries =
      List.concat_map
        (fun exp ->
          match exp with
          | "workload" -> List.map (fun seed -> Sim.Conformance.workload ~olc ~seed ()) seeds
          | "torture" ->
            List.map
              (fun seed ->
                Sim.Conformance.torture ~n:records ~pipeline ~olc ~seed ~stride ~users:2 ())
              seeds
          | "shard" ->
            List.map (fun seed -> Sim.Conformance.shard_torture ~n:records ~seed ~stride ()) seeds
          | other ->
            Printf.eprintf
              "model: unknown experiment %S (want workload, torture and/or shard)\n" other;
            exit 1)
        (split experiments)
    in
    List.iter (fun s -> print_endline (Sim.Conformance.to_string s)) summaries;
    let bad = List.filter (fun s -> not (Sim.Conformance.ok s)) summaries in
    if bad <> [] then begin
      Printf.eprintf "model conformance FAILED in %d run(s)\n" (List.length bad);
      exit 2
    end;
    Printf.printf "model conformance OK (%d run(s))\n" (List.length summaries)
  | ("table1" | "switch" | "olc") as which ->
    let s =
      match which with
      | "table1" -> Sim.Conformance.mutate_table1 ()
      | "switch" -> Sim.Conformance.mutate_switch ()
      | _ -> Sim.Conformance.mutate_olc ()
    in
    print_endline (Sim.Conformance.to_string s);
    if Sim.Conformance.ok s then begin
      Printf.eprintf "mutation self-test FAILED: the checker missed the broken %s protocol\n"
        which;
      exit 1
    end;
    print_endline "mutation caught by the checker (exit 2, as the self-test expects)";
    exit 2
  | other ->
    Printf.eprintf "model: unknown --mutate %S (want none, table1, switch or olc)\n" other;
    exit 1

(* ------------- command wiring ------------- *)

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"Build, degrade and reorganize a database end to end.")
    Term.(const demo $ trace_t $ metrics_t $ health_t)

let reorganize_cmd =
  Cmd.v
    (Cmd.info "reorganize" ~doc:"Reorganize an aged tree and report everything.")
    Term.(
      const reorganize $ records_t $ fill_t $ f2_t $ seed_t $ page_size_t $ no_swap_t
      $ no_shrink_t $ heuristic_t $ lambda_t $ workers_t $ trace_t $ metrics_t $ health_t)

let inspect_cmd =
  let verbose_t =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Dump every page of the tree.")
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Show the physical layout of an aged tree.")
    Term.(const inspect $ records_t $ fill_t $ seed_t $ page_size_t $ verbose_t)

let crash_cmd =
  let at_t =
    Arg.(value & opt int 150 & info [ "at" ] ~docv:"TICK" ~doc:"Crash after this many ticks.")
  in
  Cmd.v
    (Cmd.info "crash" ~doc:"Crash mid-reorganization and recover forward.")
    Term.(const crash $ at_t $ records_t $ seed_t)

let torture_cmd =
  let stride_t =
    Arg.(
      value & opt int 17
      & info [ "stride" ] ~docv:"K"
          ~doc:"Test every $(docv)-th crash point (1 = exhaustive sweep of every boundary).")
  in
  let users_t =
    Arg.(
      value & opt int 0
      & info [ "users" ] ~docv:"N" ~doc:"Concurrent user writers during each cycle.")
  in
  let records_t =
    Arg.(value & opt int 400 & info [ "records"; "n" ] ~docv:"N" ~doc:"Number of records.")
  in
  let pipeline_t =
    Arg.(
      value & flag
      & info [ "pipeline" ]
          ~doc:
            "Run every cycle with the asynchronous durability pipeline (group commit, \
             elevator writeback, fuzzy checkpoints with WAL truncation) attached.")
  in
  let olc_t =
    Arg.(
      value & flag
      & info [ "olc" ]
          ~doc:
            "Turn the optimistic lock-free read path on in every cycle: users read their \
             inserts back without locks, so crashes land inside optimistic descents.")
  in
  Cmd.v
    (Cmd.info "torture"
       ~doc:
         "Crash at every write boundary (torn pages, torn WAL tails), recover, verify \
          forward recovery.")
    Term.(
      const torture $ seed_t $ stride_t $ records_t $ users_t $ pipeline_t $ olc_t $ trace_t
      $ metrics_t)

let workload_cmd =
  let users_t =
    Arg.(value & opt int 8 & info [ "users" ] ~docv:"N" ~doc:"Concurrent user processes.")
  in
  let mix_t =
    Arg.(
      value
      & opt string "read-mostly"
      & info [ "mix" ] ~docv:"MIX" ~doc:"read-only | read-mostly | update-heavy.")
  in
  let shards_t =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Partition the keyspace over $(docv) shards: one store, WAL and reorganizer \
             per shard, cross-shard user transactions through the router and 2PL \
             coordinator.")
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Run user transactions concurrently with the reorganizer.")
    Term.(
      const workload $ users_t $ mix_t $ records_t $ seed_t $ shards_t $ trace_t $ metrics_t
      $ health_t)


let model_cmd =
  let seeds_t =
    Arg.(
      value
      & opt string "11,23,42"
      & info [ "seeds" ] ~docv:"S1,S2,.." ~doc:"Seeds for the conformance runs.")
  in
  let experiments_t =
    Arg.(
      value
      & opt string "workload,torture,shard"
      & info [ "experiments" ] ~docv:"LIST"
          ~doc:"Comma-separated subset of: workload, torture, shard.")
  in
  let stride_t =
    Arg.(
      value & opt int 17
      & info [ "stride" ] ~docv:"K"
          ~doc:"Crash-boundary stride for the torture conformance runs (1 = exhaustive).")
  in
  let records_t =
    Arg.(value & opt int 120 & info [ "records"; "n" ] ~docv:"N" ~doc:"Records per tree.")
  in
  let pipeline_t =
    Arg.(
      value & flag
      & info [ "pipeline" ]
          ~doc:
            "Attach the asynchronous durability pipeline during the torture conformance \
             runs — crashes then land inside group-commit windows and across checkpoint \
             truncation.")
  in
  let mutate_t =
    Arg.(
      value
      & opt string "none"
      & info [ "mutate" ] ~docv:"WHICH"
          ~doc:
            "Mutation self-test: $(b,table1) flips one lock-compatibility cell, \
             $(b,switch) breaks the \xc2\xa77.1 CK-advance guard, $(b,olc) skips the \
             optimistic-read version bumps; the checker must object (exit 2).")
  in
  let olc_t =
    Arg.(
      value & flag
      & info [ "olc" ]
          ~doc:
            "Run the conformance workloads and torture sweeps with the optimistic read \
             path on; committed optimistic reads are judged by the olc model machine.")
  in
  Cmd.v
    (Cmd.info "model"
       ~doc:
         "Replay seeded workloads and crash sweeps through the protocol state-machine \
          models (Table-1 locks, unit lifecycle, switch/drain, optimistic reads); exit 2 \
          on any violation.")
    Term.(
      const model $ seeds_t $ experiments_t $ stride_t $ records_t $ pipeline_t $ olc_t
      $ mutate_t)

let () =
  let info =
    Cmd.info "reorg-cli" ~version:"1.0.0"
      ~doc:"On-line reorganization of sparsely-populated B+-trees (Salzberg & Zou, SIGMOD '96)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ demo_cmd; reorganize_cmd; inspect_cmd; crash_cmd; workload_cmd; torture_cmd; model_cmd ]))
