(* Benchmark & experiment harness.

   With no arguments: run every experiment (the paper's table, figures and
   quantitative claims) and then the Bechamel micro-benchmarks.  With
   arguments: run only the named targets.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe table1 swaps recovery
     dune exec bench/main.exe micro      # microbenchmarks only

   --trace FILE and/or --metrics run an instrumented canonical scenario
   (aged tree, concurrent users) and emit a Chrome trace_event timeline /
   a metrics-registry dump instead of the experiment suite. *)

let experiments : (string * string * (unit -> unit)) list =
  [
    ( "table1",
      "Table 1: lock-mode compatibility matrix",
      fun () ->
        let table, ok = Sim.Exp_lock_table.run () in
        Util.Table.print table;
        Printf.printf "Table 1 reproduced exactly: %b\n" ok );
    ( "figure1",
      "Figure 1: three-pass walkthrough",
      fun () -> Util.Table.print (Sim.Exp_passes.run_figure1 ()) );
    ( "figure2",
      "Figure 2: leaf-reorg main loop branch profile",
      fun () -> Util.Table.print (Sim.Exp_passes.run_figure2 ()) );
    ( "swaps",
      "E1: Find-Free-Space heuristic vs naive (swap reduction)",
      fun () -> Util.Table.print (Sim.Exp_swaps.run ()) );
    ( "concurrency",
      "E2: user throughput during reorganization vs Tandem",
      fun () -> Util.Table.print (Sim.Exp_concurrency.run ()) );
    ( "recovery",
      "E3: forward recovery vs rollback after a crash",
      fun () -> Util.Table.print (Sim.Exp_recovery.run ()) );
    ( "logsize",
      "E4: log volume with/without careful writing",
      fun () -> Util.Table.print (Sim.Exp_logsize.run ()) );
    ( "range",
      "E5: range-scan I/O before/after reorganization",
      fun () -> Util.Table.print (Sim.Exp_range.run ()) );
    ( "granularity",
      "E6: pages per unit and overhead vs Tandem",
      fun () -> Util.Table.print (Sim.Exp_granularity.run ()) );
    ( "shrink",
      "E7: pass-3 height reduction and lock footprint",
      fun () -> Util.Table.print (Sim.Exp_shrink.run ()) );
    ( "switch",
      "E8: switch latency under concurrent updates",
      fun () -> Util.Table.print (Sim.Exp_switch.run ()) );
    ( "ablation",
      "Design-knob ablations (pass 2/3 off, f2 sweep, careful writing, stable cadence)",
      fun () -> Util.Table.print (Sim.Exp_ablation.run ()) );
    ( "unitsize",
      "§6 trade-off: pages per lock envelope vs user blocking",
      fun () -> Util.Table.print (Sim.Exp_unitsize.run ()) );
    ( "parallel",
      "Future work: range-partitioned parallel pass 1",
      fun () -> Util.Table.print (Sim.Exp_parallel.run ()) );
    ( "health",
      "H1: online tree-health telemetry (sparsify, reorg, sampled series)",
      fun () -> Util.Table.print (Sim.Exp_health.run ()) );
    ( "shard",
      "S1: keyspace-sharded engine — per-shard reorganizers, makespan scaling",
      fun () -> Util.Table.print (Sim.Exp_shard.run ()) );
    ( "groupcommit",
      "G1: group commit + async I/O pipeline vs synchronous durability",
      fun () -> Util.Table.print (Sim.Exp_groupcommit.run ()) );
    ( "olc",
      "R1: optimistic version-validated reads vs the locked reader protocol",
      fun () -> Util.Table.print (Sim.Exp_olc.run ()) );
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let mk_loaded n =
  let records = List.init n (fun i -> (2 * i, Sim.Db.payload_for (2 * i))) in
  Sim.Db.load ~fill:0.9 records

let bench_btree_search =
  let db = mk_loaded 20_000 in
  let rng = Util.Rng.create 1 in
  Test.make ~name:"btree.search (20k records)"
    (Staged.stage (fun () ->
         ignore (Btree.Tree.search db.Sim.Db.tree (2 * Util.Rng.int rng 20_000))))

let bench_btree_insert_delete =
  let db = mk_loaded 20_000 in
  let tx = Transact.Txn_mgr.fresh_owner db.Sim.Db.mgr in
  let rng = Util.Rng.create 2 in
  Test.make ~name:"btree.insert+delete"
    (Staged.stage (fun () ->
         let k = (2 * Util.Rng.int rng 1_000_000) + 1 in
         (try Btree.Tree.insert db.Sim.Db.tree ~txn:tx ~key:k ~payload:"x" ()
          with Btree.Tree.Duplicate_key _ -> ());
         ignore (Btree.Tree.delete db.Sim.Db.tree ~txn:tx k)))

let bench_btree_range =
  let db = mk_loaded 20_000 in
  let rng = Util.Rng.create 3 in
  Test.make ~name:"btree.range (100 keys)"
    (Staged.stage (fun () ->
         let lo = 2 * Util.Rng.int rng 19_000 in
         ignore (Btree.Tree.range db.Sim.Db.tree ~lo ~hi:(lo + 200))))

let bench_leaf_insert =
  let page = Pager.Page.create ~size:512 in
  Btree.Leaf.init page ~low_mark:0;
  let rng = Util.Rng.create 4 in
  Test.make ~name:"leaf.insert/delete (in page)"
    (Staged.stage (fun () ->
         let k = Util.Rng.int rng 1_000_000 in
         if Btree.Leaf.insert page { Btree.Leaf.key = k; payload = "0123456789" } then
           ignore (Btree.Leaf.delete page k)))

let bench_lock_acquire =
  let locks = Lockmgr.Lock_mgr.create () in
  let rng = Util.Rng.create 5 in
  Test.make ~name:"lock.acquire+release (S)"
    (Staged.stage (fun () ->
         let page = Util.Rng.int rng 1000 in
         match
           Lockmgr.Lock_mgr.try_acquire locks ~owner:1 (Lockmgr.Resource.Page page)
             Lockmgr.Mode.S
         with
         | `Granted ->
           Lockmgr.Lock_mgr.release locks ~owner:1 (Lockmgr.Resource.Page page) Lockmgr.Mode.S
         | `Conflict _ -> ()))

let bench_log_append =
  let log = Wal.Log.create () in
  Test.make ~name:"wal.append (leaf insert record)"
    (Staged.stage (fun () ->
         ignore
           (Wal.Log.append log
              (Wal.Record.Leaf_insert
                 { txn = 1; page = 42; key = 7; payload = "payload!"; prev = 0 }))))

let bench_record_codec =
  let body =
    Wal.Record.Reorg_move
      {
        unit_id = 3;
        org = 11;
        dest = 14;
        payload = Wal.Record.Keys_only [ 1; 2; 3; 4; 5; 6; 7; 8 ];
        dest_init = None;
        prev = 9;
      }
  in
  Test.make ~name:"wal.record encode+decode"
    (Staged.stage (fun () -> ignore (Wal.Record.decode (Wal.Record.encode body))))

let bench_reorg_unit =
  Test.make ~name:"reorg pass (120 records, end to end)"
    (Staged.stage (fun () ->
         let db, _ = Sim.Scenario.aged ~seed:9 ~n:120 ~f1:0.3 ~leaf_pages:512 () in
         let config = { Reorg.Config.default with swap_pass = false; shrink_pass = false } in
         ignore (Sim.Scenario.run_reorg ~config db)))

let micro () =
  let tests =
    [
      bench_leaf_insert;
      bench_btree_search;
      bench_btree_insert_delete;
      bench_btree_range;
      bench_lock_acquire;
      bench_log_append;
      bench_record_codec;
      bench_reorg_unit;
    ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  print_endline "Micro-benchmarks (monotonic clock):";
  let estimates = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols_results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            estimates := (name, est) :: !estimates;
            Printf.printf "  %-42s %14.1f ns/run\n%!" name est
          | _ -> Printf.printf "  %-42s (no estimate)\n%!" name)
        ols_results)
    tests;
  List.rev !estimates

(* ------------------------------------------------------------------ *)
(* Machine-readable baseline (--json FILE)                             *)
(* ------------------------------------------------------------------ *)

(* Schema: one BENCH_<rev>.json per revision, committed next to the code,
   so any two revisions can be diffed field-by-field.  Every experiment
   entry carries wall-clock plus the deterministic counters the Probe
   collector sums over all arms: logical clock ticks, disk I/O (with the
   seek/transfer cost model applied), pager hit/miss/eviction counts,
   lock-manager work (including [scan_steps], the lock-table traversal
   metric) and WAL volume.

   Version 2 adds a per-experiment [timeseries] array (empty for most):
   deterministic health-sampler snapshots — logical tick, leaf count,
   utilization, fragmentation index, side-file backlog, free pages, the
   fill-factor decile histogram, probe values with per-interval deltas, and
   the names of any threshold watches that fired at that tick.

   Version 3 adds a per-experiment [shard_sweep] array (empty for all but
   the "shard" experiment): one point per shard count with the parallel
   makespan, the mixed-workload user commit/abort counts, a [per_shard]
   block of counters for every shard (ticks, I/O, lock, WAL), and a
   [totals] block that must equal the field-wise sum of the per-shard
   blocks — ci/check.sh validates that equality.

   Version 4 adds a per-experiment [groupcommit] array (empty for all but
   the "groupcommit" experiment): one block per arm (sync vs. pipelined) —
   WAL forces, group-commit batching counters, checkpoint/truncation
   counts, the sequential/random split of the disk's read and write
   streams, the io-cost model total and the user commits.  ci/check.sh
   asserts the pipelined arm forces strictly less and writes more
   sequentially than the sync arm.

   Version 5 adds a per-experiment [olc] array (empty for all but the
   "olc" experiment): one block per arm (locked vs. olc) — the reader
   operation counts and their xor-combined result digest (which must be
   identical across the two arms), S-mode and total lock acquires for the
   arm, the optimistic-path counters (committed reads, retries, fallbacks,
   version bumps, non-enqueuing RX probes) and the arm makespan.  The
   [lock] block also gains [instant_checks].  ci/check.sh asserts the olc
   arm's S acquires are <= 0.30x the locked arm's and the digests are
   equal.  Pre-v5 baselines omit both additions; all other fields remain
   comparable field-by-field. *)
let json_schema_version = 5

let emit_experiment buf (wall, s) =
  let module J = Obs.Json in
  let i n = fun b -> J.int b n in
  let d = s.Sim.Probe.disk in
  let p = s.Sim.Probe.pool in
  let l = s.Sim.Probe.lock in
  let w = s.Sim.Probe.wal in
  J.obj buf
    [
      ("wall_clock_s", fun b -> J.float b wall);
      ( "engine",
        fun b ->
          J.obj b
            [
              ("engines", i s.Sim.Probe.engines);
              ("ticks", i s.Sim.Probe.ticks);
              ("dispatches", i s.Sim.Probe.dispatches);
            ] );
      ( "io",
        fun b ->
          J.obj b
            [
              ("reads", i d.Pager.Disk.reads);
              ("writes", i d.Pager.Disk.writes);
              ("seq_reads", i d.Pager.Disk.seq_reads);
              ("rand_reads", i d.Pager.Disk.rand_reads);
              ("seq_writes", i d.Pager.Disk.seq_writes);
              ("rand_writes", i d.Pager.Disk.rand_writes);
              ("io_cost", fun b -> J.float b s.Sim.Probe.io_cost);
            ] );
      ( "pager",
        fun b ->
          J.obj b
            [
              ("hits", i p.Pager.Buffer_pool.s_hits);
              ("misses", i p.Pager.Buffer_pool.s_misses);
              ("flushes", i p.Pager.Buffer_pool.s_flushes);
              ("dep_flushes", i p.Pager.Buffer_pool.s_dep_flushes);
              ("evictions", i p.Pager.Buffer_pool.s_evictions);
              ("torn_detected", i p.Pager.Buffer_pool.s_torn_detected);
            ] );
      ( "lock",
        fun b ->
          J.obj b
            [
              ("acquires", i l.Lockmgr.Lock_mgr.acquires);
              ("waits", i l.Lockmgr.Lock_mgr.waits);
              ("grants_after_wait", i l.Lockmgr.Lock_mgr.grants_after_wait);
              ("instant_signals", i l.Lockmgr.Lock_mgr.instant_signals);
              ("give_ups", i l.Lockmgr.Lock_mgr.give_ups);
              ("cancelled_waits", i l.Lockmgr.Lock_mgr.cancelled_waits);
              ("deadlocks", i l.Lockmgr.Lock_mgr.deadlocks);
              ("releases", i l.Lockmgr.Lock_mgr.releases);
              ("scan_steps", i l.Lockmgr.Lock_mgr.scan_steps);
              ("instant_checks", i l.Lockmgr.Lock_mgr.instant_checks);
            ] );
      ( "wal",
        fun b ->
          J.obj b
            [
              ("records", i w.Wal.Log.records);
              ("bytes", i w.Wal.Log.bytes);
              ("forced", i w.Wal.Log.forced);
            ] );
      ( "timeseries",
        fun b ->
          J.arr b
            (List.map
               (fun snap b -> Obs.Health.Sampler.emit_snapshot b snap)
               s.Sim.Probe.timeseries) );
      ( "shard_sweep",
        fun b ->
          J.arr b
            (List.map
               (fun (pt : Sim.Probe.shard_point) b ->
                 let arm (a : Sim.Probe.shard_arm) b =
                   J.obj b
                     [
                       ("shard", i a.Sim.Probe.a_shard);
                       ("ticks", i a.Sim.Probe.a_ticks);
                       ("io_reads", i a.Sim.Probe.a_io_reads);
                       ("io_writes", i a.Sim.Probe.a_io_writes);
                       ("io_cost", fun b -> J.float b a.Sim.Probe.a_io_cost);
                       ("lock_acquires", i a.Sim.Probe.a_lock_acquires);
                       ("wal_records", i a.Sim.Probe.a_wal_records);
                     ]
                 in
                 let sum f = List.fold_left (fun acc a -> acc + f a) 0 pt.Sim.Probe.p_arms in
                 let sumf f = List.fold_left (fun acc a -> acc +. f a) 0. pt.Sim.Probe.p_arms in
                 J.obj b
                   [
                     ("shards", i pt.Sim.Probe.p_shards);
                     ("parallel_makespan", i pt.Sim.Probe.p_parallel_makespan);
                     ("mixed_ticks", i pt.Sim.Probe.p_mixed_ticks);
                     ("user_committed", i pt.Sim.Probe.p_user_committed);
                     ("user_aborted", i pt.Sim.Probe.p_user_aborted);
                     ("per_shard", fun b -> J.arr b (List.map arm pt.Sim.Probe.p_arms));
                     ( "totals",
                       fun b ->
                         J.obj b
                           [
                             ("ticks", i (sum (fun a -> a.Sim.Probe.a_ticks)));
                             ("io_reads", i (sum (fun a -> a.Sim.Probe.a_io_reads)));
                             ("io_writes", i (sum (fun a -> a.Sim.Probe.a_io_writes)));
                             ( "io_cost",
                               fun b -> J.float b (sumf (fun a -> a.Sim.Probe.a_io_cost)) );
                             ( "lock_acquires",
                               i (sum (fun a -> a.Sim.Probe.a_lock_acquires)) );
                             ("wal_records", i (sum (fun a -> a.Sim.Probe.a_wal_records)));
                           ] );
                   ])
               s.Sim.Probe.shard_sweep) );
      ( "groupcommit",
        fun b ->
          J.arr b
            (List.map
               (fun (a : Sim.Probe.gc_arm) b ->
                 J.obj b
                   [
                     ("arm", fun b -> J.string b a.Sim.Probe.g_label);
                     ("forced", i a.Sim.Probe.g_forced);
                     ("batches", i a.Sim.Probe.g_batches);
                     ("coalesced", i a.Sim.Probe.g_coalesced);
                     ("max_batch", i a.Sim.Probe.g_max_batch);
                     ("checkpoints", i a.Sim.Probe.g_checkpoints);
                     ("wal_truncated", i a.Sim.Probe.g_truncated);
                     ("seq_reads", i a.Sim.Probe.g_seq_reads);
                     ("rand_reads", i a.Sim.Probe.g_rand_reads);
                     ("seq_writes", i a.Sim.Probe.g_seq_writes);
                     ("rand_writes", i a.Sim.Probe.g_rand_writes);
                     ("io_cost", fun b -> J.float b a.Sim.Probe.g_io_cost);
                     ("user_committed", i a.Sim.Probe.g_committed);
                   ])
               s.Sim.Probe.groupcommit) );
      ( "olc",
        fun b ->
          J.arr b
            (List.map
               (fun (a : Sim.Probe.olc_arm) b ->
                 J.obj b
                   [
                     ("arm", fun b -> J.string b a.Sim.Probe.o_label);
                     ("reads", i a.Sim.Probe.o_reads);
                     ("range_scans", i a.Sim.Probe.o_range_scans);
                     ("digest", i a.Sim.Probe.o_digest);
                     ("s_acquires", i a.Sim.Probe.o_s_acquires);
                     ("acquires", i a.Sim.Probe.o_acquires);
                     ("olc_reads", i a.Sim.Probe.o_olc_reads);
                     ("retries", i a.Sim.Probe.o_retries);
                     ("fallbacks", i a.Sim.Probe.o_fallbacks);
                     ("version_bumps", i a.Sim.Probe.o_version_bumps);
                     ("instant_checks", i a.Sim.Probe.o_instant_checks);
                     ("ticks", i a.Sim.Probe.o_ticks);
                   ])
               s.Sim.Probe.olc) );
    ]

let write_json ~file ~experiments:exps ~micro:micro_est =
  let module J = Obs.Json in
  let rev = try Sys.getenv "BENCH_REV" with Not_found -> "unknown" in
  let buf = Buffer.create 4096 in
  J.obj buf
    [
      ("schema_version", fun b -> J.int b json_schema_version);
      ("revision", fun b -> J.string b rev);
      ("generated_at_unix", fun b -> J.float b (Float.round (Unix.time ())));
      ( "experiments",
        fun b -> J.obj b (List.map (fun (name, e) -> (name, fun b -> emit_experiment b e)) exps)
      );
      ( "micro_ns_per_run",
        fun b -> J.obj b (List.map (fun (n, v) -> (n, fun b -> J.float b v)) micro_est) );
    ];
  Buffer.add_char buf '\n';
  let oc = open_out file in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "\nbench baseline -> %s (%d experiments, %d micro estimates)\n" file
    (List.length exps) (List.length micro_est)

(* ------------------------------------------------------------------ *)

(* Canonical instrumented run: same shape as `reorg-cli workload`, fixed
   seed, so traces are comparable across commits. *)
let instrumented ~trace ~metrics =
  let registry = if metrics then Some (Obs.Registry.create ()) else None in
  let tracer = if trace <> None then Some (Obs.Trace.create ()) else None in
  let db, _ = Sim.Scenario.aged ~seed:7 ~n:1500 ~f1:0.3 () in
  let ctx, report, _ = Sim.Scenario.run_reorg ?registry ?tracer ~users:4 db in
  Format.printf "report: %a@." Reorg.Driver.pp_report report;
  Format.printf "metrics: %a@." Reorg.Metrics.pp ctx.Reorg.Ctx.metrics;
  (match (trace, tracer) with
  | Some file, Some tr ->
    Obs.Trace.write_chrome tr file;
    Printf.printf "trace: %d events -> %s (chrome://tracing or ui.perfetto.dev)\n"
      (Obs.Trace.event_count tr) file
  | _ -> ());
  match registry with Some reg -> print_string (Obs.Registry.dump reg) | None -> ()

let run_experiment (name, title, f) =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s — %s\n" name title;
  Printf.printf "================================================================\n%!";
  f ();
  print_newline ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Strip the observability flags; what remains are experiment targets. *)
  let rec split ~trace ~metrics ~json ~rev_targets = function
    | [] -> (trace, metrics, json, List.rev rev_targets)
    | "--metrics" :: rest -> split ~trace ~metrics:true ~json ~rev_targets rest
    | "--trace" :: file :: rest -> split ~trace:(Some file) ~metrics ~json ~rev_targets rest
    | a :: rest when String.length a > 8 && String.sub a 0 8 = "--trace=" ->
      split ~trace:(Some (String.sub a 8 (String.length a - 8))) ~metrics ~json ~rev_targets rest
    | "--json" :: file :: rest -> split ~trace ~metrics ~json:(Some file) ~rev_targets rest
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--json=" ->
      split ~trace ~metrics ~json:(Some (String.sub a 7 (String.length a - 7))) ~rev_targets rest
    | a :: rest -> split ~trace ~metrics ~json ~rev_targets:(a :: rev_targets) rest
  in
  let trace, metrics, json, args =
    split ~trace:None ~metrics:false ~json:None ~rev_targets:[] args
  in
  if trace <> None || metrics then instrumented ~trace ~metrics;
  let targets =
    if args = [] then
      if (trace <> None || metrics) && json = None then []
      else List.map (fun (n, _, _) -> n) experiments @ [ "micro" ]
    else args
  in
  let exp_samples = ref [] in
  let micro_est = ref [] in
  List.iter
    (fun target ->
      if target = "micro" then micro_est := micro ()
      else
        match List.find_opt (fun (n, _, _) -> n = target) experiments with
        | Some ((name, _, _) as e) ->
          if json = None then run_experiment e
          else begin
            (* Same console output, but the run happens under the Probe
               collector and a wall clock, feeding the JSON baseline. *)
            let t0 = Unix.gettimeofday () in
            let (), sample = Sim.Probe.with_collector (fun () -> run_experiment e) in
            let wall = Unix.gettimeofday () -. t0 in
            exp_samples := (name, (wall, sample)) :: !exp_samples
          end
        | None ->
          Printf.eprintf "unknown target %S; known: %s micro\n" target
            (String.concat " " (List.map (fun (n, _, _) -> n) experiments)))
    targets;
  match json with
  | Some file -> write_json ~file ~experiments:(List.rev !exp_samples) ~micro:!micro_est
  | None -> ()
